"""SNAP ports of the TinyOS comparison applications (Section 4.6).

* **Blink** -- "sets up a periodic timer interrupt that enqueues a
  function ... to blink an LED."  On SNAP this is a timer event handler
  that re-arms the timer and calls the blink task, which toggles the LED
  through the message coprocessor ("a write to the sensor port").

* **Sense** -- "periodically samples a data value from the ADC, computes
  a running average, and displays the high order bits on the LEDs."

* **Radio stack** -- the MICA high-speed communications stack port:
  SEC-DED error coding per byte plus a running packet CRC, transmitted
  through the radio coprocessor interface two bytes at a time (versus
  the mote's byte-by-byte SPI handling).  The SEC-DED code and CRC match
  the golden models in :mod:`repro.radio.secded` / :mod:`repro.radio.crc`
  bit for bit.
"""

from repro.asm import assemble, link
from repro.isa.events import Event
from repro.netstack.layout import APP_BASE_ADDR, APP_DATA, equates
from repro.netstack.runtime import boot_source

# -- Blink ---------------------------------------------------------------------

BLINK_STATE = APP_BASE_ADDR + 0
BLINK_COUNT = APP_BASE_ADDR + 1
BLINK_PERIOD_LO = APP_BASE_ADDR + 2
BLINK_PERIOD_HI = APP_BASE_ADDR + 3

#: Default blink period: 500 ms at the 1 MHz timer tick (TinyOS Blink
#: toggles at 1 Hz; each toggle is one event).
BLINK_PERIOD_TICKS = 500_000


def blink_source(period_ticks=BLINK_PERIOD_TICKS):
    header = equates() + """
    .equ STATE, %d
    .equ COUNT, %d
    .equ PERIOD_LO, %d
    .equ PERIOD_HI, %d
""" % (BLINK_STATE, BLINK_COUNT, BLINK_PERIOD_LO, BLINK_PERIOD_HI)
    return header + ("""
blink_init:
    st r0, STATE(r0)
    st r0, COUNT(r0)
    movi r1, %d
    st r1, PERIOD_LO(r0)
    movi r1, %d
    st r1, PERIOD_HI(r0)
    ret
""" % (period_ticks & 0xFFFF, (period_ticks >> 16) & 0xFF)) + r"""
; Arm timer 0 with the 24-bit period stored in DMEM.
blink_arm:
    movi r1, 0
    ld r2, PERIOD_HI(r0)
    schedhi r1, r2
    ld r2, PERIOD_LO(r0)
    schedlo r1, r2
    ret

; TIMER0 event handler: re-arm the periodic timer, then run the blink
; task (the TinyOS flow: the timer event enqueues the blink function).
blink_timer_handler:
    jal blink_arm
    jal blink_task
    done

blink_task:
    ld r3, STATE(r0)
    xori r3, 1
    st r3, STATE(r0)
    movi r4, CMD_LED
    bfs r4, r3, 0x00FF      ; set the LED field of the command word
    mov r15, r4             ; write the sensor/LED port
    ld r5, COUNT(r0)
    addi r5, 1
    st r5, COUNT(r0)
    ret
"""


def build_blink_app(period_ticks=BLINK_PERIOD_TICKS):
    boot = boot_source(
        handlers={Event.TIMER0: "blink_timer_handler"},
        init_calls=("blink_init",),
        extra="    jal blink_arm",
    )
    return link([assemble(boot, name="boot"),
                 assemble(blink_source(period_ticks), name="blink")])


# -- Sense ----------------------------------------------------------------------

SENSE_WINDOW = 32
SENSE_IDX = APP_BASE_ADDR + 0
SENSE_AVG = APP_BASE_ADDR + 1
SENSE_ITERS = APP_BASE_ADDR + 2
SENSE_PERIOD_LO = APP_BASE_ADDR + 3
SENSE_WINDOW_BASE = APP_DATA
#: Query id of the ADC-backed sensor (matches repro.node conventions).
SENSE_ADC_QUERY = 2
SENSE_PERIOD_TICKS = 10_000


def sense_source(period_ticks=SENSE_PERIOD_TICKS):
    header = equates() + """
    .equ S_IDX, %d
    .equ S_AVG, %d
    .equ S_ITERS, %d
    .equ S_PERIOD, %d
    .equ S_WINDOW, %d
    .equ S_WINSIZE, %d
""" % (SENSE_IDX, SENSE_AVG, SENSE_ITERS, period_ticks,
       SENSE_WINDOW_BASE, SENSE_WINDOW)
    return header + r"""
sense_init:
    st r0, S_IDX(r0)
    st r0, S_AVG(r0)
    st r0, S_ITERS(r0)
    movi r1, S_WINDOW
    movi r2, S_WINSIZE
.zero:
    st r0, 0(r1)
    addi r1, 1
    subi r2, 1
    bnez r2, .zero
    ret

sense_arm:
    movi r1, 0
    movi r2, S_PERIOD
    schedlo r1, r2
    ret

; TIMER0: start an ADC conversion (Query) and re-arm the sample timer.
sense_timer_handler:
    movi r15, CMD_QUERY + 2
    jal sense_arm
    done

; QUERY_DONE: fold the sample into the running average and display the
; high-order bits of the average on the LEDs.
sense_query_handler:
    mov r1, r15                 ; the ADC sample
    ld r2, S_IDX(r0)
    movi r3, S_WINDOW
    add r3, r2
    st r1, 0(r3)
    addi r2, 1
    andi r2, S_WINSIZE - 1
    st r2, S_IDX(r0)
    ; sum the window
    movi r3, S_WINDOW
    movi r4, S_WINSIZE
    movi r5, 0
.sum:
    ld r6, 0(r3)
    add r5, r6
    addi r3, 1
    subi r4, 1
    bnez r4, .sum
    srl r5, 5                   ; /32
    st r5, S_AVG(r0)
    ; display the high bits (10-bit sample -> top 3 bits on the LEDs)
    srl r5, 7
    andi r5, 0x0007
    movi r6, CMD_LED
    or r6, r5
    mov r15, r6
    ld r6, S_ITERS(r0)
    addi r6, 1
    st r6, S_ITERS(r0)
    done
"""


def build_sense_app(period_ticks=SENSE_PERIOD_TICKS):
    boot = boot_source(
        handlers={Event.TIMER0: "sense_timer_handler",
                  Event.QUERY_DONE: "sense_query_handler"},
        init_calls=("sense_init",),
        extra="    jal sense_arm",
    )
    return link([assemble(boot, name="boot"),
                 assemble(sense_source(period_ticks), name="sense")])


# -- MICA high-speed radio stack port ---------------------------------------------

RS_CRC = APP_BASE_ADDR + 0        # running packet CRC
RS_BYTES = APP_BASE_ADDR + 1      # bytes sent
RS_NEXT = APP_BASE_ADDR + 2       # next byte value to send (driver state)
#: Receive-side state (decoder driver).
RS_RX_COUNT = APP_BASE_ADDR + 3   # codewords decoded
RS_RX_CORRECTED = APP_BASE_ADDR + 4
RS_RX_BAD = APP_BASE_ADDR + 5     # uncorrectable double errors
RS_RX_BUF = APP_DATA              # decoded byte ring (64 entries)
RS_RX_BUF_SIZE = 64


def radiostack_source():
    """Assembly source of the radio-stack port.

    ``rs_send_byte`` (r1 = data byte) updates the running CRC, SEC-DED
    encodes the byte into a 13-bit codeword, and hands the codeword to
    the radio through the message coprocessor.  ``rs_soft_handler`` is a
    driver: each SOFT event sends one byte taken from ``RS_NEXT``.

    The SEC-DED layout matches :mod:`repro.radio.secded`: data bits at
    Hamming positions 3,5,6,7,9,10,11,12; parity at 1,2,4,8; overall
    parity at word bit 12.
    """
    header = equates() + """
    .equ RS_CRC, %d
    .equ RS_BYTES, %d
    .equ RS_NEXT, %d
    .equ RS_RX_COUNT, %d
    .equ RS_RX_CORRECTED, %d
    .equ RS_RX_BAD, %d
    .equ RS_RX_BUF, %d
    .equ RS_RX_BUF_SIZE, %d
""" % (RS_CRC, RS_BYTES, RS_NEXT, RS_RX_COUNT, RS_RX_CORRECTED,
       RS_RX_BAD, RS_RX_BUF, RS_RX_BUF_SIZE)
    return header + r"""
rs_init:
    movi r1, 0xFFFF
    st r1, RS_CRC(r0)           ; CRC-16-CCITT init value
    st r0, RS_BYTES(r0)
    st r0, RS_NEXT(r0)
    st r0, RS_RX_COUNT(r0)
    st r0, RS_RX_CORRECTED(r0)
    st r0, RS_RX_BAD(r0)
    ret

; ---- parity helper: r5 -> r5 = XOR of all bits of r5.  Clobbers r6.
rs_parity:
    mov r6, r5
    srl r6, 8
    xor r5, r6
    mov r6, r5
    srl r6, 4
    xor r5, r6
    mov r6, r5
    srl r6, 2
    xor r5, r6
    mov r6, r5
    srl r6, 1
    xor r5, r6
    andi r5, 0x0001
    ret

; ---- SEC-DED encode: r1 = byte -> r1 = 13-bit codeword.
; Clobbers r4-r6; preserves nothing else.
rs_encode:
    push lr
    ; scatter the data bits to positions 3,5,6,7,9,10,11,12 (bits
    ; 2,4,5,6,8,9,10,11 of the word)
    mov r4, r1
    andi r4, 0x0001
    sll r4, 2
    mov r5, r1
    andi r5, 0x000E
    sll r5, 3
    or r4, r5
    mov r5, r1
    andi r5, 0x00F0
    sll r5, 4
    or r4, r5
    ; p1: parity over word bits 2,4,6,8,10
    mov r5, r4
    andi r5, 0x0554
    jal rs_parity
    or r4, r5
    ; p2: parity over word bits 2,5,6,9,10
    mov r5, r4
    andi r5, 0x0664
    jal rs_parity
    sll r5, 1
    or r4, r5
    ; p4: parity over word bits 4,5,6,11
    mov r5, r4
    andi r5, 0x0870
    jal rs_parity
    sll r5, 3
    or r4, r5
    ; p8: parity over word bits 8,9,10,11
    mov r5, r4
    andi r5, 0x0F00
    jal rs_parity
    sll r5, 7
    or r4, r5
    ; overall parity over the 12-bit Hamming word -> bit 12
    mov r5, r4
    andi r5, 0x0FFF
    jal rs_parity
    sll r5, 12
    or r4, r5
    mov r1, r4
    pop lr
    ret

; ---- CRC-16-CCITT update: r1 = data byte; updates RS_CRC in DMEM.
; Clobbers r4, r6, r7.
rs_crc_update:
    ld r4, RS_CRC(r0)
    mov r7, r1
    sll r7, 8
    xor r4, r7
    movi r6, 8
.crc_loop:
    mov r7, r4
    andi r7, 0x8000
    sll r4, 1
    beqz r7, .no_poly
    xori r4, 0x1021
.no_poly:
    subi r6, 1
    bnez r6, .crc_loop
    st r4, RS_CRC(r0)
    ret

; ---- send one byte: CRC update, SEC-DED encode, transmit codeword.
rs_send_byte:
    push lr
    push r1
    jal rs_crc_update
    pop r1
    jal rs_encode
    movi r15, CMD_TX
    mov r15, r1
    ld r4, RS_BYTES(r0)
    addi r4, 1
    st r4, RS_BYTES(r0)
    pop lr
    ret

; ---- driver: each SOFT event sends the next byte.
rs_soft_handler:
    ld r1, RS_NEXT(r0)
    andi r1, 0x00FF
    jal rs_send_byte
    ld r1, RS_NEXT(r0)
    addi r1, 1
    st r1, RS_NEXT(r0)
    done

; ---- SEC-DED decode: r1 = 13-bit codeword -> r1 = byte,
; r2 = status (0 ok, 1 corrected, 2 uncorrectable).  Clobbers r3-r7.
; Syndrome masks include the parity positions themselves:
;   s1 over positions {1,3,5,7,9,11}  = word bits 0,2,4,6,8,10  (0x0555)
;   s2 over positions {2,3,6,7,10,11} = word bits 1,2,5,6,9,10  (0x0666)
;   s4 over positions {4,5,6,7,12}    = word bits 3,4,5,6,11    (0x0878)
;   s8 over positions {8,9,10,11,12}  = word bits 7,8,9,10,11   (0x0F80)
rs_decode:
    push lr
    andi r1, 0x1FFF
    mov r3, r1              ; working codeword
    movi r4, 0              ; syndrome accumulator
    mov r5, r3
    andi r5, 0x0555
    jal rs_parity
    or r4, r5
    mov r5, r3
    andi r5, 0x0666
    jal rs_parity
    sll r5, 1
    or r4, r5
    mov r5, r3
    andi r5, 0x0878
    jal rs_parity
    sll r5, 2
    or r4, r5
    mov r5, r3
    andi r5, 0x0F80
    jal rs_parity
    sll r5, 3
    or r4, r5
    mov r5, r3
    jal rs_parity           ; overall parity of all 13 bits
    bnez r5, .dec_overall_odd
    bnez r4, .dec_double    ; nonzero syndrome, even overall: two errors
    movi r2, 0              ; clean codeword
    jmp .dec_extract
.dec_overall_odd:
    movi r2, 1              ; exactly one flipped bit: correct it
    beqz r4, .dec_extract   ; it was the overall parity bit itself
    movi r6, 1
    mov r7, r4
    subi r7, 1
    sllv r6, r7             ; 1 << (syndrome - 1)
    xor r3, r6
    jmp .dec_extract
.dec_double:
    movi r2, 2
    movi r1, 0
    pop lr
    ret
.dec_extract:
    ; byte = ((w>>2)&1) | ((w>>3)&0x0E) | ((w>>4)&0xF0)
    mov r1, r3
    srl r1, 2
    andi r1, 0x0001
    mov r5, r3
    srl r5, 3
    andi r5, 0x000E
    or r1, r5
    mov r5, r3
    srl r5, 4
    andi r5, 0x00F0
    or r1, r5
    pop lr
    ret

; ---- receive driver: decode each incoming codeword into the byte ring.
rs_rx_handler:
    mov r1, r15             ; the received (possibly corrupted) codeword
    jal rs_decode
    movi r3, 2
    sub r3, r2
    beqz r3, .rx_bad
    beqz r2, .rx_store
    ld r4, RS_RX_CORRECTED(r0)
    addi r4, 1
    st r4, RS_RX_CORRECTED(r0)
.rx_store:
    ld r4, RS_RX_COUNT(r0)
    mov r5, r4
    andi r5, RS_RX_BUF_SIZE - 1
    movi r6, RS_RX_BUF
    add r6, r5
    st r1, 0(r6)
    addi r4, 1
    st r4, RS_RX_COUNT(r0)
    done
.rx_bad:
    ld r4, RS_RX_BAD(r0)
    addi r4, 1
    st r4, RS_RX_BAD(r0)
    done
"""


def build_radiostack_app():
    boot = boot_source(
        handlers={Event.SOFT: "rs_soft_handler"},
        init_calls=("rs_init",),
    )
    return link([assemble(boot, name="boot"),
                 assemble(radiostack_source(), name="radiostack")])


def build_radiostack_rx():
    """The receive side of the radio stack: each incoming radio word is
    a SEC-DED codeword; the handler decodes it (correcting single-bit
    channel errors) into a byte ring in DMEM."""
    boot = boot_source(
        handlers={Event.RADIO_RX: "rs_rx_handler"},
        init_calls=("rs_init",),
        start_rx=True,
    )
    return link([assemble(boot, name="boot"),
                 assemble(radiostack_source(), name="radiostack")])
