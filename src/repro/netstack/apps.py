"""The paper's sensor applications (Section 4.2) and full-node builds.

* **Temperature Sense** -- "Simulates reading a sensor and computing a
  running average and logging the value."  A periodic timer polls the
  temperature sensor through the message coprocessor; the QUERY_DONE
  handler maintains an 8-sample window, computes the windowed average,
  tracks min/max, and appends the average to a log ring in DMEM.

* **Range Comparison (Threshold)** -- "Simulates receiving a packet,
  comparing two fields, and logging the larger of the two."  Runs on top
  of the MAC + AODV stack: DATA packets delivered to this node carry two
  sample fields; the handler compares them, logs the larger together
  with its source, and counts threshold exceedances.

``build_network_node`` assembles a complete relay/sink node image (MAC +
AODV + threshold app) for multi-hop experiments.
"""

from repro.asm import assemble, link
from repro.isa.events import Event
from repro.netstack.aodv import aodv_source
from repro.netstack.layout import APP_DATA, APP_BASE_ADDR, equates
from repro.netstack.mac import mac_source
from repro.netstack.runtime import boot_source

# -- Temperature Sense ---------------------------------------------------------

#: App memory map (word offsets from APP_BASE / APP_DATA).
TEMP_WINDOW = 16
TEMP_SAMPLE_IDX = APP_BASE_ADDR + 0   # circular index into the window
TEMP_AVG = APP_BASE_ADDR + 1          # latest windowed average
TEMP_MIN = APP_BASE_ADDR + 2
TEMP_MAX = APP_BASE_ADDR + 3
TEMP_LOG_IDX = APP_BASE_ADDR + 4      # next log slot
TEMP_ITERATIONS = APP_BASE_ADDR + 5   # completed sample iterations
TEMP_ALARM_LIMIT = APP_BASE_ADDR + 6  # alarm threshold on the average
TEMP_ALARM_COUNT = APP_BASE_ADDR + 7  # alarm exceedances
TEMP_WINDOW_BASE = APP_BASE_ADDR + 8  # 16 window slots
TEMP_LOG_BASE = APP_DATA              # 64-entry average log ring
TEMP_LOG_SIZE = 64

#: Default sample period in timer ticks (1 ms at the 1 MHz tick).
TEMP_PERIOD_TICKS = 1000
#: Query identifier of the temperature sensor (matches repro.node).
TEMP_SENSOR_QUERY = 1


def temperature_source(period_ticks=TEMP_PERIOD_TICKS):
    """Assembly source of the Temperature Sense application."""
    header = equates() + """
    .equ SAMPLE_IDX, %d
    .equ AVG, %d
    .equ TMIN, %d
    .equ TMAX, %d
    .equ LOG_IDX, %d
    .equ ITERS, %d
    .equ WINDOW, %d
    .equ LOG_BASE, %d
    .equ LOG_SIZE, %d
    .equ PERIOD_LO, %d
    .equ PERIOD_HI, %d
    .equ ALARM_LIMIT, %d
    .equ ALARM_COUNT, %d
""" % (TEMP_SAMPLE_IDX, TEMP_AVG, TEMP_MIN, TEMP_MAX, TEMP_LOG_IDX,
       TEMP_ITERATIONS, TEMP_WINDOW_BASE, TEMP_LOG_BASE, TEMP_LOG_SIZE,
       period_ticks & 0xFFFF, (period_ticks >> 16) & 0xFF,
       TEMP_ALARM_LIMIT, TEMP_ALARM_COUNT)
    return header + r"""
; Initialize app state; call from boot.
temp_init:
    st r0, SAMPLE_IDX(r0)
    st r0, LOG_IDX(r0)
    st r0, ITERS(r0)
    movi r1, 0x7FFF             ; min sentinel (values are 10-bit codes,
    st r1, TMIN(r0)             ; so signed 16-bit compares stay valid)
    st r0, TMAX(r0)
    movi r1, 0x0300             ; default alarm threshold on the average
    st r1, ALARM_LIMIT(r0)
    st r0, ALARM_COUNT(r0)
    ; zero the sample window
    movi r1, WINDOW
    movi r2, 16
.zero:
    st r0, 0(r1)
    addi r1, 1
    subi r2, 1
    bnez r2, .zero
    ret

; Arm the sample timer (timer 0); 24-bit period via schedhi/schedlo.
temp_arm_timer:
    movi r1, 0
    movi r2, PERIOD_HI
    schedhi r1, r2
    movi r2, PERIOD_LO
    schedlo r1, r2
    ret

; TIMER0 handler: kick off a sensor query and re-arm the timer.
temp_timer_handler:
    movi r15, CMD_QUERY + 1     ; Query the temperature sensor
    jal temp_arm_timer
    done

; QUERY_DONE handler: the sensor value is in the r15 FIFO.
temp_query_handler:
    mov r1, r15                 ; new sample
    ; window[idx] = sample; idx = (idx + 1) mod 8
    ld r2, SAMPLE_IDX(r0)
    movi r3, WINDOW
    add r3, r2
    st r1, 0(r3)
    addi r2, 1
    andi r2, 0x000F
    st r2, SAMPLE_IDX(r0)
    ; sum the window
    movi r3, WINDOW
    movi r4, 16
    movi r5, 0
.sum:
    ld r6, 0(r3)
    add r5, r6
    addi r3, 1
    subi r4, 1
    bnez r4, .sum
    srl r5, 4                   ; average of 16
    st r5, AVG(r0)
    ; track extremes of the raw sample
    ld r6, TMIN(r0)
    sub r6, r1                  ; min - sample : borrow set when min < sample
    bltz r6, .check_max
    st r1, TMIN(r0)
.check_max:
    ld r6, TMAX(r0)
    sub r6, r1
    bgez r6, .log
    st r1, TMAX(r0)
.log:
    ; append the average to the log ring
    ld r6, LOG_IDX(r0)
    movi r7, LOG_BASE
    add r7, r6
    st r5, 0(r7)
    addi r6, 1
    andi r6, LOG_SIZE - 1
    st r6, LOG_IDX(r0)
    ; alarm check on the windowed average
    ld r6, ALARM_LIMIT(r0)
    sub r6, r5                  ; limit - avg : negative when avg > limit
    bgez r6, .no_alarm
    ld r6, ALARM_COUNT(r0)
    addi r6, 1
    st r6, ALARM_COUNT(r0)
.no_alarm:
    ld r6, ITERS(r0)
    addi r6, 1
    st r6, ITERS(r0)
    done
"""


def build_temperature_app(period_ticks=TEMP_PERIOD_TICKS):
    """Link the complete Temperature Sense node image."""
    boot = boot_source(
        handlers={Event.TIMER0: "temp_timer_handler",
                  Event.QUERY_DONE: "temp_query_handler"},
        init_calls=("temp_init",),
        extra="    jal temp_arm_timer",
    )
    return link([assemble(boot, name="boot"),
                 assemble(temperature_source(period_ticks), name="temp")])


# -- Range Comparison / Threshold ------------------------------------------------

THRESH_LARGER_LOG = APP_DATA          # ring of (src, larger) pairs
THRESH_LOG_SIZE = 32                  # pairs
THRESH_LOG_IDX = APP_BASE_ADDR + 0
THRESH_COUNT = APP_BASE_ADDR + 1      # packets processed
THRESH_EXCEED = APP_BASE_ADDR + 2     # times the larger field crossed limit
THRESH_LIMIT = APP_BASE_ADDR + 3      # configurable threshold value


def threshold_source():
    """Assembly source of the Range Comparison application.

    Exports ``app_deliver`` (called by the AODV layer for local DATA
    packets).  Payload layout: ``[final_dst, field_a, field_b]``.
    """
    header = equates() + """
    .equ LOG_BASE, %d
    .equ LOG_SIZE, %d
    .equ LOG_IDX, %d
    .equ COUNT, %d
    .equ EXCEED, %d
    .equ LIMIT, %d
""" % (THRESH_LARGER_LOG, THRESH_LOG_SIZE, THRESH_LOG_IDX, THRESH_COUNT,
       THRESH_EXCEED, THRESH_LIMIT)
    return header + r"""
thresh_init:
    st r0, LOG_IDX(r0)
    st r0, COUNT(r0)
    st r0, EXCEED(r0)
    movi r1, 0x0200
    st r1, LIMIT(r0)            ; default threshold
    ret

; Called by the routing layer with a verified DATA packet in RX_BUF whose
; payload[0] named this node.  payload[1] and payload[2] are the fields.
app_deliver:
    ld r1, RX_BUF + PKT_HDR + 1(r0)   ; field a
    ld r2, RX_BUF + PKT_HDR + 2(r0)   ; field b
    ; r3 = larger of the two
    mov r3, r1
    mov r4, r2
    sub r4, r1                  ; b - a : borrow set when b < a
    bltz r4, .a_larger
    mov r3, r2
.a_larger:
    ; log (source, larger) into the ring
    ld r4, LOG_IDX(r0)
    movi r5, LOG_BASE
    add r5, r4
    add r5, r4                  ; pairs: base + 2*idx
    ld r6, RX_BUF + PKT_SRC(r0)
    st r6, 0(r5)
    st r3, 1(r5)
    addi r4, 1
    andi r4, LOG_SIZE - 1
    st r4, LOG_IDX(r0)
    ; threshold exceedance check
    ld r5, LIMIT(r0)
    sub r5, r3                  ; limit - larger : borrow when limit < larger
    bgez r5, .counted
    ld r6, EXCEED(r0)
    addi r6, 1
    st r6, EXCEED(r0)
.counted:
    ld r6, COUNT(r0)
    addi r6, 1
    st r6, COUNT(r0)
    ret
"""


def build_threshold_app(node_id=1):
    """Link a sink node: MAC + AODV + Range Comparison app."""
    boot = boot_source(
        handlers={Event.RADIO_RX: "mac_rx_handler"},
        init_calls=("mac_rx_init", "rt_init", "thresh_init"),
        node_id=node_id,
        start_rx=True,
    )
    return link([assemble(boot, name="boot"),
                 assemble(mac_source(), name="mac"),
                 assemble(aodv_source(), name="aodv"),
                 assemble(threshold_source(), name="thresh")])


def build_network_node(node_id, csma=False):
    """A general relay/sink node image for multi-hop experiments."""
    handlers = {Event.RADIO_RX: "mac_rx_handler"}
    if csma:
        handlers[Event.TIMER2] = "mac_backoff_expired"
    boot = boot_source(
        handlers=handlers,
        init_calls=("mac_rx_init", "rt_init", "thresh_init"),
        node_id=node_id,
        start_rx=True,
    )
    return link([assemble(boot, name="boot"),
                 assemble(mac_source(), name="mac"),
                 assemble(aodv_source(), name="aodv"),
                 assemble(threshold_source(), name="thresh")])
