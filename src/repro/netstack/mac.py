"""The MAC layer, in SNAP assembly (802.11-inspired, Section 4.2).

Exports:

* ``mac_send`` -- transmit the packet staged at ``TX_BUF``: computes the
  checksum on the fly and streams (TX command, data word) pairs through
  r15 to the message coprocessor, which paces the radio (the word-by-word
  scheme of Section 3.3).
* ``mac_send_csma`` -- ``mac_send`` preceded by a pseudo-random backoff
  scheduled on timer 2 (the 802.11 DIFS/backoff flavor); the caller's
  boot code must route ``TIMER2`` to ``mac_backoff_expired``.
* ``mac_rx_handler`` -- the ``RADIO_RX`` event handler: assembles
  incoming words into ``RX_BUF``, learns the packet length from the
  header, verifies the checksum, and calls the upper layer's
  ``mac_rx_dispatch`` on each complete, valid packet.
* ``mac_rx_init`` -- resets receive state (call from boot).

The upper layer (routing or application) must export ``mac_rx_dispatch``.
"""

from repro.netstack.layout import (
    PKT_HEADER_WORDS,
    PKT_LEN,
    RX_BAD_ADDR,
    RX_COUNT_ADDR,
    TX_COUNT_ADDR,
    equates,
)

#: The MAC's packet buffers are 32 words; ``mac_rx_handler`` treats any
#: frame claiming more as a desynchronized word stream and resets.
MAX_FRAME_WORDS = 32


def frame_total_words(words):
    """The MAC's framing rule, mirrored for Python-side observers.

    Given the words of a frame seen so far (in order), returns the total
    frame length in words (header + payload + checksum) once the
    header's LEN word has arrived, or ``None`` while the length is still
    unknown.  Implausible lengths (frames that would overflow the
    32-word packet buffers) return ``None`` as well -- exactly the
    condition under which ``mac_rx_handler`` resynchronizes.
    """
    if len(words) <= PKT_LEN:
        return None
    total = PKT_HEADER_WORDS + words[PKT_LEN] + 1
    if total > MAX_FRAME_WORDS:
        return None
    return total

#: DMEM cells where the MAC assembly keeps its packet counters, by
#: metric name.  The Python-side observability layer harvests these into
#: the metrics registry (``<node>.mac.<name>``); see
#: ``SensorNode.metrics_snapshot`` and ``docs/OBSERVABILITY.md``.
MAC_COUNTER_CELLS = {
    "tx_packets": TX_COUNT_ADDR,
    "rx_packets": RX_COUNT_ADDR,
    "rx_bad": RX_BAD_ADDR,
}


def read_mac_counters(dmem):
    """Harvest the MAC's DMEM counters from a node's data memory."""
    return {name: dmem.peek(address)
            for name, address in MAC_COUNTER_CELLS.items()}


def mac_source():
    """Assembly source of the MAC module."""
    return equates() + r"""
; ---------------------------------------------------------------- mac_send
; Transmit the packet staged at TX_BUF (header + payload); appends the
; 16-bit additive checksum.  Clobbers r4-r7.
mac_send:
    movi r4, TX_BUF         ; word pointer
    ld r5, TX_BUF + PKT_LEN(r0)
    addi r5, PKT_HDR        ; body words = header + payload
    movi r6, 0              ; running checksum
.send_loop:
    ld r7, 0(r4)
    add r6, r7              ; checksum += word
    movi r15, CMD_TX
    mov r15, r7             ; hand the data word to the coprocessor
    addi r4, 1
    subi r5, 1
    bnez r5, .send_loop
    movi r15, CMD_TX
    mov r15, r6             ; trailing checksum word
    ld r7, TX_COUNT(r0)
    addi r7, 1
    st r7, TX_COUNT(r0)
    ret

; ----------------------------------------------------------- mac_send_csma
; 802.11-flavored transmit: draw a pseudo-random backoff and arm timer 2;
; the TIMER2 handler performs the actual send.  Without carrier sensing,
; two contenders only avoid each other when their slots differ by more
; than one packet's air time (~7.5ms for 9 words at 19.2kbps), so the
; slot width is 8192 ticks (~8.2ms).  Clobbers r1, r2.
mac_send_csma:
    rand r1
    andi r1, 0x0007         ; 0..7 backoff slots
    sll r1, 13              ; slots of 8192 ticks (~8.2ms)
    addi r1, 16             ; DIFS floor
    mov r2, r1
    movi r1, 2              ; timer register 2
    schedlo r1, r2
    ret

; The TIMER2 event handler for CSMA sends the staged packet.
mac_backoff_expired:
    jal mac_send
    done

; ------------------------------------------------------- mac_send_csma_ca
; CSMA/CA: short backoff slots plus clear-channel assessment through the
; message coprocessor's CCA command.  Because the channel is sensed at
; slot expiry, the slots can be ~32us instead of a full packet air time.
; Route TIMER2 to mac_backoff_ca_expired.  Clobbers r1, r2.
mac_send_csma_ca:
    rand r1
    andi r1, 0x001F         ; 0..31 slots
    sll r1, 5               ; 32-tick (~32us) slots
    addi r1, 16             ; DIFS floor
    mov r2, r1
    movi r1, 2
    schedlo r1, r2
    ret

mac_backoff_ca_expired:
    movi r15, CMD_CCA       ; synchronous carrier-detect read
    mov r1, r15
    beqz r1, .channel_clear
    jal mac_send_csma_ca    ; busy: draw a fresh backoff and retry
    done
.channel_clear:
    jal mac_send
    done

; ------------------------------------------------------------- mac_rx_init
; Receive state lives in dedicated registers -- with no operating system
; and atomic handlers, high registers can be owned by the MAC outright:
;   r10 = next write index into RX_BUF
;   r11 = expected total packet words (0 = header length not yet known)
;   r12 = write pointer (RX_BUF + r10)
mac_rx_init:
    movi r10, 0
    movi r11, 0
    movi r12, RX_BUF
    st r0, RX_READY(r0)
    ret

; ---------------------------------------------------------- mac_rx_handler
; RADIO_RX event handler: one 16-bit word is waiting in the r15 FIFO.
mac_rx_handler:
    mov r1, r15             ; pop the received word
    st r1, 0(r12)           ; RX_BUF[index] = word
    addi r12, 1
    addi r10, 1
    bnez r11, .check_done
    ; Total length is unknown until the header's LEN word has arrived.
    movi r5, PKT_LEN
    sub r5, r10             ; PKT_LEN - index : negative once LEN is in
    bltz r5, .learn_len
    done
.learn_len:
    ld r11, RX_BUF + PKT_LEN(r0)
    addi r11, PKT_HDR
    addi r11, 1             ; + checksum word
    ; Framing sanity: a plausible packet fits the 32-word buffer.  A
    ; wild length means the word stream lost alignment (e.g. a dropped
    ; word mid-packet); reset and wait for the next packet boundary.
    movi r4, 32
    sub r4, r11             ; 32 - expect : negative when oversized
    bgez r4, .check_done
    ld r7, RX_BAD(r0)
    addi r7, 1
    st r7, RX_BAD(r0)
    movi r10, 0
    movi r11, 0
    movi r12, RX_BUF
    done
.check_done:
    mov r4, r11
    sub r4, r10             ; remaining = expect - index
    beqz r4, .complete
    done
.complete:
    ; Verify the additive checksum over the body words.
    mov r5, r11
    subi r5, 1              ; body words
    movi r4, RX_BUF
    movi r6, 0
.sum_loop:
    ld r7, 0(r4)
    add r6, r7
    addi r4, 1
    subi r5, 1
    bnez r5, .sum_loop
    ld r7, 0(r4)            ; the received checksum word
    sub r6, r7
    movi r10, 0             ; rearm reception for the next packet
    movi r11, 0
    movi r12, RX_BUF
    beqz r6, .good
    ; Bad packet: count it and drop.
    ld r7, RX_BAD(r0)
    addi r7, 1
    st r7, RX_BAD(r0)
    done
.good:
    movi r7, 1
    st r7, RX_READY(r0)
    ld r7, RX_COUNT(r0)
    addi r7, 1
    st r7, RX_COUNT(r0)
    jal mac_rx_dispatch     ; upper layer consumes RX_BUF
    done
"""
