"""The simplified AODV-style routing layer, in SNAP assembly.

Packet conventions (see :mod:`repro.netstack.layout`): the header ``DST``
field is the MAC-level (one-hop) receiver; for DATA packets the *final*
destination travels in ``payload[0]``.  Packet types:

* ``TYPE_DATA`` -- deliver locally when ``payload[0]`` is this node,
  otherwise look up the next hop and forward (the paper's *AODV Packet
  Forward* handler).
* ``TYPE_RREQ`` -- a route-lookup request; when ``payload[0]`` names this
  node, answer with an RREP back toward the requester (the paper's *AODV
  Route Reply* handler).
* ``TYPE_RREP`` -- install a route: the reply's originator is reachable
  through the MAC-level sender.

The routing table is ``ROUTE_ENTRIES`` slots of (dest, next_hop, hops) in
DMEM; lookups scan linearly, as the paper's "lookup is then performed in
the node's routing table" suggests for a table of this size.

Exports ``mac_rx_dispatch`` (consumed by the MAC), ``rt_lookup``,
``rt_add``, ``rt_init``, ``aodv_forward``, ``aodv_send_rrep``.  Requires
the application layer to export ``app_deliver``.
"""

from repro.netstack.layout import (
    ADDR_BROADCAST,
    FWD_COUNT_ADDR,
    PKT_TYPE_DATA,
    PKT_TYPE_RREP,
    PKT_TYPE_RREQ,
    REBROADCAST_COUNT_ADDR,
    RREP_COUNT_ADDR,
    equates,
)

#: DMEM cells where the routing assembly keeps its counters, by metric
#: name; harvested into the metrics registry as ``<node>.aodv.<name>``.
AODV_COUNTER_CELLS = {
    "forwards": FWD_COUNT_ADDR,
    "rreps_sent": RREP_COUNT_ADDR,
    "rreq_rebroadcasts": REBROADCAST_COUNT_ADDR,
}


def read_aodv_counters(dmem):
    """Harvest the routing layer's DMEM counters from data memory."""
    return {name: dmem.peek(address)
            for name, address in AODV_COUNTER_CELLS.items()}


#: Wire names of the routing layer's packet types, for trace rendering.
PACKET_KIND_NAMES = {
    PKT_TYPE_DATA: "data",
    PKT_TYPE_RREQ: "rreq",
    PKT_TYPE_RREP: "rrep",
}


def journey_key(packet):
    """The hop-invariant identity of an AODV packet, or ``None``.

    Every hop rewrites the MAC-level ``src``/``dst`` header words (and
    rebroadcast/relay hops bump the hop counter riding in the payload),
    so an end-to-end journey must be keyed on what *survives*
    forwarding:

    * DATA -- the sequence number, the final destination in
      ``payload[0]``, and the payload body (copied verbatim by
      ``aodv_forward``);
    * RREQ -- the flood's (origin, seq) pair, exactly the identity the
      guest's own duplicate-suppression table uses;
    * RREP -- the (replier, origin, seq) triple (``seq`` echoes the
      request's sequence number).

    Used by :class:`repro.obs.spans.JourneyTracker` to stitch the
    per-hop transmissions it reconstructs into one journey tree.
    """
    payload = packet["payload"]
    kind = packet["type"]
    if kind == PKT_TYPE_DATA and payload:
        return ("data", packet["seq"], payload[0], tuple(payload[1:]))
    if kind == PKT_TYPE_RREQ and len(payload) >= 2:
        return ("rreq", payload[1], packet["seq"])
    if kind == PKT_TYPE_RREP and len(payload) >= 3:
        return ("rrep", payload[0], payload[2], packet["seq"])
    return None


def journey_destination(packet):
    """The node id at which this packet's journey terminates, or ``None``.

    DATA travels to ``payload[0]``; an RREQ flood is answered by its
    target (``payload[0]``); an RREP is consumed by the RREQ origin it
    relays back to (``payload[2]``).
    """
    payload = packet["payload"]
    kind = packet["type"]
    if kind == PKT_TYPE_DATA and payload:
        return payload[0]
    if kind == PKT_TYPE_RREQ and payload:
        return payload[0]
    if kind == PKT_TYPE_RREP and len(payload) >= 3:
        return payload[2]
    return None


def is_no_route_forward(packet):
    """Does this transmission betray a failed route lookup?

    ``aodv_forward`` writes ``rt_lookup``'s result straight into the
    MAC destination; a miss returns 0xFFFF, so a *DATA* packet sent to
    the broadcast address means the sender had no route toward
    ``payload[0]`` (legitimate broadcasts are RREQ floods only).
    """
    return (packet["type"] == PKT_TYPE_DATA
            and packet["dst"] == ADDR_BROADCAST)


def aodv_source():
    """Assembly source of the routing module."""
    return equates() + r"""
; -------------------------------------------------------------- rt_init
rt_init:
    movi r1, ROUTE_TABLE
    movi r2, ROUTE_ENTRIES
.clear:
    st r0, 0(r1)            ; dest 0 marks a free slot
    st r0, 1(r1)
    st r0, 2(r1)
    addi r1, 3
    subi r2, 1
    bnez r2, .clear
    ; clear the RREQ duplicate-suppression ring and counters
    movi r1, SEEN_TABLE
    movi r2, SEEN_ENTRIES
.clear_seen:
    st r0, 0(r1)
    st r0, 1(r1)
    addi r1, 2
    subi r2, 1
    bnez r2, .clear_seen
    st r0, SEEN_IDX(r0)
    movi r1, 1
    st r1, RREQ_SEQ(r0)
    st r0, REBCAST_COUNT(r0)
    ret

; ------------------------------------------------------------- rt_lookup
; r1 = destination -> r1 = next hop (0xFFFF when no route).  Clobbers r2-r4.
rt_lookup:
    movi r2, ROUTE_TABLE
    movi r3, ROUTE_ENTRIES
.scan:
    ld r4, 0(r2)
    sub r4, r1              ; entry.dest - wanted
    beqz r4, .hit
    addi r2, 3
    subi r3, 1
    bnez r3, .scan
    movi r1, 0xFFFF
    ret
.hit:
    ld r1, 1(r2)
    ret

; ---------------------------------------------------------------- rt_add
; r1 = destination, r2 = next hop, r3 = hop count.  Takes a free slot,
; or updates an existing entry only when the new route is strictly
; shorter (AODV keeps the best-known route; without this check a
; duplicate RREQ arriving over a longer path would clobber the reverse
; route and the RREP would loop).  Silently drops when the table is
; full.  Clobbers r4-r6.
rt_add:
    movi r4, ROUTE_TABLE
    movi r5, ROUTE_ENTRIES
.find:
    ld r6, 0(r4)
    sub r6, r1
    beqz r6, .existing
    ld r6, 0(r4)
    beqz r6, .store         ; free slot
    addi r4, 3
    subi r5, 1
    bnez r5, .find
    ret                     ; table full
.existing:
    ld r6, 2(r4)            ; current hop count
    sub r6, r3              ; current - new : positive when new is shorter
    beqz r6, .keep
    bltz r6, .keep          ; current <= new: keep what we have
    jmp .store
.keep:
    ret
.store:
    st r1, 0(r4)
    st r2, 1(r4)
    st r3, 2(r4)
    ret

; -------------------------------------------------------- mac_rx_dispatch
; Called by the MAC with a verified packet in RX_BUF.
mac_rx_dispatch:
    push lr
    ; MAC-level address filter: accept frames for us or broadcast.
    ld r1, RX_BUF + PKT_DST(r0)
    movi r2, BCAST
    sub r2, r1
    beqz r2, .addr_ok
    ld r2, NODE_ID(r0)
    sub r2, r1
    beqz r2, .addr_ok
    pop lr                  ; overheard unicast for someone else
    ret
.addr_ok:
    ld r1, RX_BUF + PKT_TYPE(r0)
    movi r2, TYPE_DATA
    sub r2, r1
    bnez r2, .try_rreq
    jmp .is_data
.try_rreq:
    movi r2, TYPE_RREQ
    sub r2, r1
    bnez r2, .try_rrep
    jmp .is_rreq
.try_rrep:
    movi r2, TYPE_RREP
    sub r2, r1
    bnez r2, .drop
    jmp .is_rrep
.drop:
    pop lr                  ; unknown type: drop
    ret
.is_data:
    ld r1, RX_BUF + PKT_HDR(r0)   ; payload[0] = final destination
    ld r2, NODE_ID(r0)
    sub r2, r1
    beqz r2, .deliver
    jal aodv_forward
    pop lr
    ret
.deliver:
    jal app_deliver
    pop lr
    ret
.is_rreq:
    ; RREQ payload: [target, origin, hops-so-far].  First: is this our
    ; own flood echoing back?  Drop it.
    ld r1, RX_BUF + PKT_HDR + 1(r0)   ; origin
    ld r2, NODE_ID(r0)
    sub r2, r1
    bnez r2, .rreq_theirs
    pop lr
    ret
.rreq_theirs:
    ; Duplicate suppression first: one reverse route + one rebroadcast
    ; per (origin, seq).  The first copy to arrive travelled the
    ; fastest (shortest) path, so it defines the reverse route.
    jal aodv_rreq_seen
    beqz r1, .rreq_fresh
    pop lr
    ret
.rreq_fresh:
    ; Install the reverse route: origin via the node we heard this RREQ
    ; from, at hops-so-far + 1 (classic AODV reverse-path setup).
    ld r1, RX_BUF + PKT_HDR + 1(r0)
    ld r2, RX_BUF + PKT_SRC(r0)
    ld r3, RX_BUF + PKT_HDR + 2(r0)
    addi r3, 1
    jal rt_add
    ld r1, RX_BUF + PKT_HDR(r0)   ; target
    ld r2, NODE_ID(r0)
    sub r2, r1
    beqz r2, .answer
    jal aodv_rebroadcast          ; keep the flood moving
    pop lr
    ret
.answer:
    jal aodv_send_rrep
    pop lr
    ret
.is_rrep:
    ; RREP payload: [replier, hops, origin].  Install the forward route:
    ; the replier is reachable via the node that handed us this RREP.
    ld r1, RX_BUF + PKT_HDR(r0)
    ld r2, RX_BUF + PKT_SRC(r0)
    ld r3, RX_BUF + PKT_HDR + 1(r0)  ; hop count
    jal rt_add
    ; If we originated the RREQ, discovery is complete; otherwise relay
    ; the RREP along the reverse path toward the origin.
    ld r1, RX_BUF + PKT_HDR + 2(r0)
    ld r2, NODE_ID(r0)
    sub r2, r1
    bnez r2, .rrep_relay
    pop lr
    ret
.rrep_relay:
    jal aodv_forward_rrep
    pop lr
    ret

; ------------------------------------------------------------ aodv_forward
; Forward the DATA packet in RX_BUF toward payload[0].  Copies the body
; into TX_BUF, rewrites the MAC header, and transmits.
aodv_forward:
    push lr
    movi r2, RX_BUF
    movi r3, TX_BUF
    ld r4, RX_BUF + PKT_LEN(r0)
    addi r4, PKT_HDR
.copy:
    ld r5, 0(r2)
    st r5, 0(r3)
    addi r2, 1
    addi r3, 1
    subi r4, 1
    bnez r4, .copy
    ld r1, TX_BUF + PKT_HDR(r0)   ; final destination
    jal rt_lookup
    st r1, TX_BUF + PKT_DST(r0)   ; next hop becomes MAC receiver
    ld r2, NODE_ID(r0)
    st r2, TX_BUF + PKT_SRC(r0)
    jal mac_send
    ld r2, FWD_COUNT(r0)
    addi r2, 1
    st r2, FWD_COUNT(r0)
    pop lr
    ret

; ---------------------------------------------------------- aodv_send_rrep
; Answer the RREQ in RX_BUF: unicast an RREP back along the reverse path
; (one hop toward the node we heard the RREQ from).
aodv_send_rrep:
    push lr
    ld r1, RX_BUF + PKT_SRC(r0)
    st r1, TX_BUF + PKT_DST(r0)   ; first hop of the reverse path
    ld r2, NODE_ID(r0)
    st r2, TX_BUF + PKT_SRC(r0)
    movi r3, TYPE_RREP
    st r3, TX_BUF + PKT_TYPE(r0)
    ld r3, RX_BUF + PKT_SEQ(r0)
    st r3, TX_BUF + PKT_SEQ(r0)   ; echo the request sequence number
    movi r3, 3
    st r3, TX_BUF + PKT_LEN(r0)
    st r2, TX_BUF + PKT_HDR(r0)   ; payload[0] = replier (us)
    movi r3, 1
    st r3, TX_BUF + PKT_HDR + 1(r0)  ; payload[1] = hop count
    ld r3, RX_BUF + PKT_HDR + 1(r0)
    st r3, TX_BUF + PKT_HDR + 2(r0)  ; payload[2] = RREQ origin
    jal mac_send
    ld r2, RREP_COUNT(r0)
    addi r2, 1
    st r2, RREP_COUNT(r0)
    pop lr
    ret

; ---------------------------------------------------------- aodv_send_rreq
; Originate route discovery for the target in r1: broadcast an RREQ with
; payload [target, us] and a fresh sequence number.
aodv_send_rreq:
    push lr
    st r1, TX_BUF + PKT_HDR(r0)   ; payload[0] = target
    movi r2, BCAST
    st r2, TX_BUF + PKT_DST(r0)
    ld r2, NODE_ID(r0)
    st r2, TX_BUF + PKT_SRC(r0)
    st r2, TX_BUF + PKT_HDR + 1(r0)  ; payload[1] = origin (us)
    movi r3, TYPE_RREQ
    st r3, TX_BUF + PKT_TYPE(r0)
    ld r3, RREQ_SEQ(r0)
    st r3, TX_BUF + PKT_SEQ(r0)
    addi r3, 1
    st r3, RREQ_SEQ(r0)
    movi r3, 3
    st r3, TX_BUF + PKT_LEN(r0)
    st r0, TX_BUF + PKT_HDR + 2(r0)  ; payload[2] = hops so far (0)
    jal mac_send
    pop lr
    ret

; ---------------------------------------------------------- aodv_rreq_seen
; Duplicate suppression for the RREQ in RX_BUF.  Returns r1 = 1 when the
; (origin, seq) pair was already seen; otherwise records it and returns
; r1 = 0.  Clobbers r2-r5.
aodv_rreq_seen:
    ld r1, RX_BUF + PKT_HDR + 1(r0)   ; origin
    ld r2, RX_BUF + PKT_SEQ(r0)
    movi r3, SEEN_TABLE
    movi r4, SEEN_ENTRIES
.seen_scan:
    ld r5, 0(r3)
    sub r5, r1
    bnez r5, .seen_next
    ld r5, 1(r3)
    sub r5, r2
    bnez r5, .seen_next
    movi r1, 1
    ret
.seen_next:
    addi r3, 2
    subi r4, 1
    bnez r4, .seen_scan
    ; record in the ring
    ld r5, SEEN_IDX(r0)
    movi r3, SEEN_TABLE
    add r3, r5
    add r3, r5
    st r1, 0(r3)
    st r2, 1(r3)
    addi r5, 1
    andi r5, SEEN_ENTRIES - 1
    st r5, SEEN_IDX(r0)
    movi r1, 0
    ret

; -------------------------------------------------------- aodv_rebroadcast
; Re-flood the RREQ in RX_BUF with ourselves as the MAC sender.
aodv_rebroadcast:
    push lr
    movi r2, RX_BUF
    movi r3, TX_BUF
    ld r4, RX_BUF + PKT_LEN(r0)
    addi r4, PKT_HDR
.rb_copy:
    ld r5, 0(r2)
    st r5, 0(r3)
    addi r2, 1
    addi r3, 1
    subi r4, 1
    bnez r4, .rb_copy
    movi r2, BCAST
    st r2, TX_BUF + PKT_DST(r0)
    ld r2, NODE_ID(r0)
    st r2, TX_BUF + PKT_SRC(r0)
    ld r2, TX_BUF + PKT_HDR + 2(r0)
    addi r2, 1
    st r2, TX_BUF + PKT_HDR + 2(r0)   ; hops-so-far++
    jal mac_send
    ld r2, REBCAST_COUNT(r0)
    addi r2, 1
    st r2, REBCAST_COUNT(r0)
    pop lr
    ret

; ------------------------------------------------------- aodv_forward_rrep
; Relay the RREP in RX_BUF one hop along the reverse path toward the
; RREQ origin (payload[2]); drops the reply when no reverse route exists.
aodv_forward_rrep:
    push lr
    movi r2, RX_BUF
    movi r3, TX_BUF
    ld r4, RX_BUF + PKT_LEN(r0)
    addi r4, PKT_HDR
.fr_copy:
    ld r5, 0(r2)
    st r5, 0(r3)
    addi r2, 1
    addi r3, 1
    subi r4, 1
    bnez r4, .fr_copy
    ld r1, TX_BUF + PKT_HDR + 2(r0)   ; the RREQ origin
    jal rt_lookup
    movi r2, BCAST
    sub r2, r1
    bnez r2, .fr_route_ok
    pop lr                            ; no reverse route: drop
    ret
.fr_route_ok:
    st r1, TX_BUF + PKT_DST(r0)
    ld r2, NODE_ID(r0)
    st r2, TX_BUF + PKT_SRC(r0)
    ld r2, TX_BUF + PKT_HDR + 1(r0)
    addi r2, 1
    st r2, TX_BUF + PKT_HDR + 1(r0)   ; hop count++
    jal mac_send
    pop lr
    ret
"""
