"""In-network aggregation: query dissemination and aggregated replies.

The paper's Figure 1 shows "larger nodes have more resources (e.g.,
aggregation points)".  This module implements that role in SNAP
assembly: a sink floods an aggregation query (MAX or SUM over every
node's current reading); each node records the flood parent, schedules
an *aggregation window* on timer 0, folds its own reading and its
children's replies into an accumulator, and when the window closes sends
one aggregated reply up the reverse path.  Windows shrink with flood
depth so children answer before their parents' windows close.

Packet types (extending the DATA/RREQ/RREP/ACK space):

* ``TYPE_AGGQ`` (5) -- query flood; payload ``[qid, op, depth]``;
* ``TYPE_AGGR`` (6) -- aggregated reply; payload ``[qid, value, count]``.

Ops: 1 = MAX, 2 = SUM (the sink divides by the count for the average).
"""

from repro.asm import assemble, link
from repro.isa.events import Event
from repro.netstack.layout import APP_BASE_ADDR, equates
from repro.netstack.mac import mac_source
from repro.netstack.runtime import boot_source

PKT_TYPE_AGGQ = 5
PKT_TYPE_AGGR = 6

AGG_OP_MAX = 1
AGG_OP_SUM = 2

#: Node state (DMEM words inside the APP_BASE scratch region).
AGG_QID = APP_BASE_ADDR + 0       # last query id seen (dedup)
AGG_PARENT = APP_BASE_ADDR + 1    # flood parent (reply destination)
AGG_OP = APP_BASE_ADDR + 2
AGG_ACC = APP_BASE_ADDR + 3       # accumulator
AGG_COUNT = APP_BASE_ADDR + 4     # readings folded in
AGG_ACTIVE = APP_BASE_ADDR + 5    # window open?
AGG_VALUE = APP_BASE_ADDR + 6     # this node's current reading
AGG_REPLIES = APP_BASE_ADDR + 7   # child replies merged (statistics)
#: Sink-side results.
AGG_RESULT = APP_BASE_ADDR + 8
AGG_RESULT_COUNT = APP_BASE_ADDR + 9
AGG_DONE = APP_BASE_ADDR + 10     # completed queries
AGG_NEXT_QID = APP_BASE_ADDR + 11
AGG_NEXT_OP = APP_BASE_ADDR + 12  # op for the next originated query

#: Aggregation windows in timer ticks: the sink waits BASE; a depth-d
#: node waits BASE - d*DELTA (deeper answers sooner, so parents still
#: have their windows open).  Adjacent depths must differ by at least
#: two packet air times (~8ms each at 19.2kbps): one for the child's
#: reply to serialize, one so sibling replies at adjacent depths never
#: overlap on the air.  DELTA = 18ms gives ~2.5ms of margin; the floor
#: bounds the usable flood depth at 3 with these constants (BASE fits
#: the 16-bit schedlo immediate).
WINDOW_BASE_TICKS = 62_000
WINDOW_DELTA_TICKS = 18_000
WINDOW_FLOOR_TICKS = 8_000


def aggregation_source():
    header = equates() + """
    .equ TYPE_AGGQ, %d
    .equ TYPE_AGGR, %d
    .equ OP_MAX, %d
    .equ OP_SUM, %d
    .equ A_QID, %d
    .equ A_PARENT, %d
    .equ A_OP, %d
    .equ A_ACC, %d
    .equ A_COUNT, %d
    .equ A_ACTIVE, %d
    .equ A_VALUE, %d
    .equ A_REPLIES, %d
    .equ A_RESULT, %d
    .equ A_RESULT_COUNT, %d
    .equ A_DONE, %d
    .equ A_NEXT_QID, %d
    .equ A_NEXT_OP, %d
    .equ W_BASE, %d
    .equ W_DELTA, %d
    .equ W_FLOOR, %d
    .equ W_SINK_HI, %d
    .equ W_SINK_LO, %d
""" % (PKT_TYPE_AGGQ, PKT_TYPE_AGGR, AGG_OP_MAX, AGG_OP_SUM, AGG_QID,
       AGG_PARENT, AGG_OP, AGG_ACC, AGG_COUNT, AGG_ACTIVE, AGG_VALUE,
       AGG_REPLIES, AGG_RESULT, AGG_RESULT_COUNT, AGG_DONE, AGG_NEXT_QID,
       AGG_NEXT_OP, WINDOW_BASE_TICKS, WINDOW_DELTA_TICKS,
       WINDOW_FLOOR_TICKS,
       ((WINDOW_BASE_TICKS + WINDOW_DELTA_TICKS) >> 16) & 0xFF,
       (WINDOW_BASE_TICKS + WINDOW_DELTA_TICKS) & 0xFFFF)
    return header + r"""
agg_init:
    st r0, A_QID(r0)
    st r0, A_ACTIVE(r0)
    st r0, A_REPLIES(r0)
    st r0, A_DONE(r0)
    movi r1, 1
    st r1, A_NEXT_QID(r0)
    movi r1, OP_MAX
    st r1, A_NEXT_OP(r0)
    ret

; ---- merge r1=value, r2=count into the open accumulator per A_OP.
agg_merge:
    ld r3, A_OP(r0)
    movi r4, OP_MAX
    sub r4, r3
    bnez r4, .merge_sum
    ; MAX: acc = max(acc, value)
    ld r3, A_ACC(r0)
    mov r4, r3
    sub r4, r1              ; acc - value : negative when value larger
    bgez r4, .merge_count
    st r1, A_ACC(r0)
    jmp .merge_count
.merge_sum:
    ld r3, A_ACC(r0)
    add r3, r1
    st r3, A_ACC(r0)
.merge_count:
    ld r3, A_COUNT(r0)
    add r3, r2
    st r3, A_COUNT(r0)
    ret

; -------------------------------------------------------- mac_rx_dispatch
mac_rx_dispatch:
    push lr
    ld r1, RX_BUF + PKT_TYPE(r0)
    movi r2, TYPE_AGGQ
    sub r2, r1
    bnez r2, .try_reply
    jmp .got_query
.try_reply:
    movi r2, TYPE_AGGR
    sub r2, r1
    bnez r2, .agg_ignore
    jmp .got_reply
.agg_ignore:
    pop lr
    ret

.got_query:
    ; Duplicate suppression: one window per query id.
    ld r1, RX_BUF + PKT_HDR(r0)     ; qid
    ld r2, A_QID(r0)
    sub r2, r1
    bnez r2, .fresh_query
    pop lr
    ret
.fresh_query:
    st r1, A_QID(r0)
    ld r2, RX_BUF + PKT_SRC(r0)
    st r2, A_PARENT(r0)
    ld r2, RX_BUF + PKT_HDR + 1(r0)
    st r2, A_OP(r0)
    ; seed the accumulator with this node's own reading
    ld r2, A_VALUE(r0)
    st r2, A_ACC(r0)
    movi r2, 1
    st r2, A_COUNT(r0)
    st r2, A_ACTIVE(r0)
    ; window = W_BASE - depth * W_DELTA, clamped to the floor.  The
    ; values exceed 0x8000, so the comparison uses the unsigned borrow
    ; (materialized through addc) rather than a sign-bit branch.
    ld r2, RX_BUF + PKT_HDR + 2(r0) ; depth
    movi r3, W_BASE
.win_loop:
    beqz r2, .win_done
    mov r4, r3
    subi r4, W_DELTA + W_FLOOR  ; borrow set when w < DELTA + FLOOR
    movi r4, 0
    movi r5, 0
    addc r4, r5
    bnez r4, .win_clamp
    subi r3, W_DELTA
    subi r2, 1
    jmp .win_loop
.win_clamp:
    movi r3, W_FLOOR
.win_done:
    movi r1, 0
    mov r2, r3
    schedlo r1, r2
    ; re-flood the query one level deeper
    movi r2, RX_BUF
    movi r3, TX_BUF
    ld r4, RX_BUF + PKT_LEN(r0)
    addi r4, PKT_HDR
.q_copy:
    ld r5, 0(r2)
    st r5, 0(r3)
    addi r2, 1
    addi r3, 1
    subi r4, 1
    bnez r4, .q_copy
    movi r2, BCAST
    st r2, TX_BUF + PKT_DST(r0)
    ld r2, NODE_ID(r0)
    st r2, TX_BUF + PKT_SRC(r0)
    ld r2, TX_BUF + PKT_HDR + 2(r0)
    addi r2, 1
    st r2, TX_BUF + PKT_HDR + 2(r0)
    jal mac_send
    pop lr
    ret

.got_reply:
    ; A child's aggregate.  Replies are unicast: ignore overheard
    ; replies addressed to another parent.
    ld r1, RX_BUF + PKT_DST(r0)
    ld r2, NODE_ID(r0)
    sub r2, r1
    beqz r2, .reply_addressed
    pop lr
    ret
.reply_addressed:
    ld r1, A_ACTIVE(r0)
    bnez r1, .reply_check
    pop lr
    ret
.reply_check:
    ld r1, RX_BUF + PKT_HDR(r0)     ; reply qid
    ld r2, A_QID(r0)
    sub r2, r1
    beqz r2, .reply_merge
    pop lr
    ret
.reply_merge:
    ld r1, RX_BUF + PKT_HDR + 1(r0) ; value
    ld r2, RX_BUF + PKT_HDR + 2(r0) ; count
    jal agg_merge
    ld r1, A_REPLIES(r0)
    addi r1, 1
    st r1, A_REPLIES(r0)
    pop lr
    ret

; -------------------------------------------------- agg_window_handler
; TIMER0: the aggregation window closed -- send the aggregate upward
; (relay nodes) or publish the result (the sink, parent == 0xFFFF).
agg_window_handler:
    ld r1, A_ACTIVE(r0)
    bnez r1, .window_live
    done
.window_live:
    st r0, A_ACTIVE(r0)
    ld r1, A_PARENT(r0)
    movi r2, BCAST
    sub r2, r1
    bnez r2, .send_up
    ; the sink: publish
    ld r1, A_ACC(r0)
    st r1, A_RESULT(r0)
    ld r1, A_COUNT(r0)
    st r1, A_RESULT_COUNT(r0)
    ld r1, A_DONE(r0)
    addi r1, 1
    st r1, A_DONE(r0)
    done
.send_up:
    st r1, TX_BUF + PKT_DST(r0)
    ld r2, NODE_ID(r0)
    st r2, TX_BUF + PKT_SRC(r0)
    movi r2, TYPE_AGGR
    st r2, TX_BUF + PKT_TYPE(r0)
    ld r2, A_QID(r0)
    st r2, TX_BUF + PKT_SEQ(r0)
    movi r2, 3
    st r2, TX_BUF + PKT_LEN(r0)
    ld r2, A_QID(r0)
    st r2, TX_BUF + PKT_HDR(r0)
    ld r2, A_ACC(r0)
    st r2, TX_BUF + PKT_HDR + 1(r0)
    ld r2, A_COUNT(r0)
    st r2, TX_BUF + PKT_HDR + 2(r0)
    ; Siblings at the same depth share a reply window; CSMA/CA (short
    ; backoff slots + carrier sense on timer 2) serializes them.
    jal mac_send_csma_ca
    done

; -------------------------------------------------- agg_originate (sink)
; SOFT event: flood a new query with op A_NEXT_OP and open the sink's
; own (longest) window.  The sink's parent is BCAST, marking "publish".
agg_soft_handler:
    ld r1, A_NEXT_QID(r0)
    st r1, A_QID(r0)
    addi r1, 1
    st r1, A_NEXT_QID(r0)
    movi r1, BCAST
    st r1, A_PARENT(r0)
    ld r1, A_NEXT_OP(r0)
    st r1, A_OP(r0)
    ld r1, A_VALUE(r0)
    st r1, A_ACC(r0)
    movi r1, 1
    st r1, A_COUNT(r0)
    st r1, A_ACTIVE(r0)
    ; the query packet: [BCAST, me, AGGQ, qid, 3, qid, op, depth=1]
    movi r1, BCAST
    st r1, TX_BUF + PKT_DST(r0)
    ld r1, NODE_ID(r0)
    st r1, TX_BUF + PKT_SRC(r0)
    movi r1, TYPE_AGGQ
    st r1, TX_BUF + PKT_TYPE(r0)
    ld r1, A_QID(r0)
    st r1, TX_BUF + PKT_SEQ(r0)
    movi r1, 3
    st r1, TX_BUF + PKT_LEN(r0)
    ld r1, A_QID(r0)
    st r1, TX_BUF + PKT_HDR(r0)
    ld r1, A_OP(r0)
    st r1, TX_BUF + PKT_HDR + 1(r0)
    movi r1, 1
    st r1, TX_BUF + PKT_HDR + 2(r0)
    jal mac_send
    ; The sink's window is one DELTA longer than its depth-1 children's
    ; (BASE + DELTA exceeds 16 bits, hence the schedhi/schedlo pair).
    movi r1, 0
    movi r2, W_SINK_HI
    schedhi r1, r2
    movi r2, W_SINK_LO
    schedlo r1, r2
    done
"""


def build_aggregation_node(node_id):
    """An aggregation-capable node (any node can also be the sink: raise
    a SOFT event to originate a query)."""
    boot = boot_source(
        handlers={Event.RADIO_RX: "mac_rx_handler",
                  Event.TIMER0: "agg_window_handler",
                  Event.TIMER2: "mac_backoff_ca_expired",
                  Event.SOFT: "agg_soft_handler"},
        init_calls=("mac_rx_init", "agg_init"),
        node_id=node_id,
        start_rx=True,
    )
    return link([assemble(boot, name="boot"),
                 assemble(mac_source(), name="mac"),
                 assemble(aggregation_source(), name="agg")])
