"""Boot-code generation.

SNAP has no operating system: boot code installs event handlers into the
hardware event-handler table with ``setaddr``, performs app-specific
initialization, and ends with ``done`` -- after which the node sleeps
until the first event (Section 3.1).
"""

from repro.isa.events import Event
from repro.netstack.layout import STACK_TOP, equates


def boot_source(handlers, init_calls=(), node_id=0, start_rx=False,
                extra=""):
    """Generate the boot module's assembly source.

    *handlers* maps :class:`~repro.isa.events.Event` (or int) to the
    handler's global symbol name.  *init_calls* is a sequence of symbols
    to ``jal`` during boot (library init routines).  With *start_rx*, the
    boot code puts the radio in receive mode.  *extra* is appended
    verbatim before the final ``done`` (app-specific boot work such as
    scheduling the first timer).
    """
    lines = [equates()]
    lines.append("boot:")
    lines.append("    movi sp, STACK_TOP")
    lines.append("    movi r1, %d" % node_id)
    lines.append("    st r1, NODE_ID(r0)")
    # Seed the pseudo-random unit from the node identity so neighbours
    # draw distinct CSMA backoffs.  The multiplier scrambles adjacent
    # ids apart (nearby LFSR seeds produce nearly identical early
    # outputs); a zero product falls back to the hardware default seed.
    lines.append("    movi r1, %d" % ((node_id * 40503) & 0xFFFF))
    lines.append("    seed r1")
    # Route every event somewhere: unhandled events fall through to a
    # do-nothing handler instead of re-entering boot at address 0 (the
    # hardware reset value of the handler table).
    table = {int(event): ".evt_ignore" for event in Event}
    for event, symbol in handlers.items():
        table[int(Event(event))] = symbol
    for event_number, symbol in sorted(table.items()):
        lines.append("    movi r1, %d    ; %s" % (event_number,
                                                  Event(event_number).name))
        lines.append("    movi r2, %s" % symbol)
        lines.append("    setaddr r1, r2")
    for symbol in init_calls:
        lines.append("    jal %s" % symbol)
    if start_rx:
        lines.append("    movi r15, CMD_RX")
    if extra:
        lines.append(extra)
    lines.append("    done")
    lines.append(".evt_ignore:")
    lines.append("    done")
    return "\n".join(lines) + "\n"


def stack_top():
    """The runtime's initial stack pointer (word address in DMEM)."""
    return STACK_TOP
