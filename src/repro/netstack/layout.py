"""Shared memory layout, packet format, and Python-side golden helpers.

The DMEM map and packet format are shared between the SNAP assembly
modules (via ``.equ`` constants emitted by :func:`equates`) and the
Python test/benchmark harnesses (via the constants below).
"""

# -- DMEM word addresses -----------------------------------------------------

#: Node identity (set by boot or poked by the harness).
NODE_ID_ADDR = 0x000
#: MAC receive state: next write index within RX_BUF.
RX_INDEX_ADDR = 0x001
#: MAC receive state: total expected packet words (0 = unknown yet).
RX_EXPECT_ADDR = 0x002
#: Set to 1 by the MAC when a verified packet sits in RX_BUF.
RX_READY_ADDR = 0x003
#: Count of packets dropped for bad checksums.
RX_BAD_ADDR = 0x004
#: Count of packets received and verified.
RX_COUNT_ADDR = 0x005
#: Count of packets transmitted.
TX_COUNT_ADDR = 0x006
#: Count of packets forwarded by the routing layer.
FWD_COUNT_ADDR = 0x007
#: Count of route replies sent.
RREP_COUNT_ADDR = 0x008
#: Ring index into the RREQ duplicate-suppression table.
SEEN_IDX_ADDR = 0x009
#: Next RREQ sequence number this node will originate.
RREQ_SEQ_ADDR = 0x00A
#: Target node id for the next originated RREQ (driver scratch).
RREQ_TARGET_ADDR = 0x00B
#: Count of RREQs rebroadcast by this node.
REBROADCAST_COUNT_ADDR = 0x00C
#: Scratch words for applications.
APP_BASE_ADDR = 0x010

#: Packet buffers (32 words each).
RX_BUF = 0x020
TX_BUF = 0x040

#: Routing table: ROUTE_ENTRIES entries of (dest, next_hop, hops).
ROUTE_TABLE = 0x060
ROUTE_ENTRIES = 8
ROUTE_ENTRY_WORDS = 3

#: RREQ duplicate-suppression ring: SEEN_ENTRIES pairs of (origin, seq).
#: Four entries suffice for the handful of concurrent floods a
#: data-gathering network sees, and keep the per-RREQ scan short.
SEEN_TABLE = 0x078
SEEN_ENTRIES = 4

#: Application data region (log buffers etc.).
APP_DATA = 0x090

#: Initial stack pointer (stack grows down; DMEM is 2048 words).
STACK_TOP = 0x7C0

# -- packet format -----------------------------------------------------------

#: Header word offsets.
PKT_DST = 0
PKT_SRC = 1
PKT_TYPE = 2
PKT_SEQ = 3
PKT_LEN = 4
PKT_HEADER_WORDS = 5

PKT_TYPE_DATA = 1
PKT_TYPE_RREQ = 2
PKT_TYPE_RREP = 3

#: Maximum payload words so a packet fits the 32-word buffers.
PKT_MAX_PAYLOAD = 26

#: Broadcast address.
ADDR_BROADCAST = 0xFFFF

# -- message-coprocessor command words (match repro.coprocessors.commands) ---

CMD_WORD_RX = 0x1000
CMD_WORD_TX = 0x2000
CMD_WORD_QUERY = 0x3000
CMD_WORD_LED = 0x4000
CMD_WORD_CCA = 0x5000


def checksum(words):
    """The MAC's packet checksum: 16-bit sum of all words before it."""
    return sum(words) & 0xFFFF


def make_packet(dst, src, pkt_type, seq, payload):
    """Build a full packet (header + payload + checksum) as a word list."""
    if len(payload) > PKT_MAX_PAYLOAD:
        raise ValueError("payload too long: %d words" % len(payload))
    words = [dst & 0xFFFF, src & 0xFFFF, pkt_type & 0xFFFF, seq & 0xFFFF,
             len(payload) & 0xFFFF]
    words.extend(word & 0xFFFF for word in payload)
    words.append(checksum(words))
    return words


def parse_packet(words):
    """Split a packet word list into a dict (harness-side convenience)."""
    if len(words) < PKT_HEADER_WORDS + 1:
        raise ValueError("packet too short")
    body, check = words[:-1], words[-1]
    if checksum(body) != check:
        raise ValueError("bad checksum")
    length = body[PKT_LEN]
    return {
        "dst": body[PKT_DST],
        "src": body[PKT_SRC],
        "type": body[PKT_TYPE],
        "seq": body[PKT_SEQ],
        "payload": body[PKT_HEADER_WORDS:PKT_HEADER_WORDS + length],
    }


def inspect_packet(words):
    """Lenient :func:`parse_packet` for observers of possibly-corrupted
    word streams: never raises, reports checksum validity instead.

    Returns ``None`` when *words* is too short to carry a header;
    otherwise a dict with the header fields, the payload (truncated to
    the words actually present), and ``checksum_ok``.
    """
    if len(words) < PKT_HEADER_WORDS + 1:
        return None
    body, check = words[:-1], words[-1]
    length = body[PKT_LEN]
    return {
        "dst": body[PKT_DST],
        "src": body[PKT_SRC],
        "type": body[PKT_TYPE],
        "seq": body[PKT_SEQ],
        "payload": body[PKT_HEADER_WORDS:PKT_HEADER_WORDS + length],
        "checksum_ok": checksum(body) == check,
    }


def equates():
    """Assembly ``.equ`` block shared by every netstack module."""
    pairs = [
        ("NODE_ID", NODE_ID_ADDR),
        ("RX_INDEX", RX_INDEX_ADDR),
        ("RX_EXPECT", RX_EXPECT_ADDR),
        ("RX_READY", RX_READY_ADDR),
        ("RX_BAD", RX_BAD_ADDR),
        ("RX_COUNT", RX_COUNT_ADDR),
        ("TX_COUNT", TX_COUNT_ADDR),
        ("FWD_COUNT", FWD_COUNT_ADDR),
        ("RREP_COUNT", RREP_COUNT_ADDR),
        ("APP_BASE", APP_BASE_ADDR),
        ("RX_BUF", RX_BUF),
        ("TX_BUF", TX_BUF),
        ("SEEN_IDX", SEEN_IDX_ADDR),
        ("RREQ_SEQ", RREQ_SEQ_ADDR),
        ("RREQ_TARGET", RREQ_TARGET_ADDR),
        ("REBCAST_COUNT", REBROADCAST_COUNT_ADDR),
        ("ROUTE_TABLE", ROUTE_TABLE),
        ("ROUTE_ENTRIES", ROUTE_ENTRIES),
        ("SEEN_TABLE", SEEN_TABLE),
        ("SEEN_ENTRIES", SEEN_ENTRIES),
        ("BCAST", ADDR_BROADCAST),
        ("APP_DATA", APP_DATA),
        ("STACK_TOP", STACK_TOP),
        ("PKT_DST", PKT_DST),
        ("PKT_SRC", PKT_SRC),
        ("PKT_TYPE", PKT_TYPE),
        ("PKT_SEQ", PKT_SEQ),
        ("PKT_LEN", PKT_LEN),
        ("PKT_HDR", PKT_HEADER_WORDS),
        ("TYPE_DATA", PKT_TYPE_DATA),
        ("TYPE_RREQ", PKT_TYPE_RREQ),
        ("TYPE_RREP", PKT_TYPE_RREP),
        ("CMD_RX", CMD_WORD_RX),
        ("CMD_TX", CMD_WORD_TX),
        ("CMD_QUERY", CMD_WORD_QUERY),
        ("CMD_LED", CMD_WORD_LED),
        ("CMD_CCA", CMD_WORD_CCA),
    ]
    return "".join("    .equ %s, %d\n" % (name, value) for name, value in pairs)


# -- protocol-layer attribution ------------------------------------------------
#
# The energy-provenance ledger (:mod:`repro.obs.energy`) charges every
# picojoule of guest CPU time to a protocol layer.  Two maps drive the
# attribution: handler *tags* (the event names the meter already buckets
# by) give a coarse default, and symbolicated function-name prefixes --
# the netstack's modules all follow a ``<layer>_`` naming convention --
# refine it wherever a line table is available.

#: Canonical layer order, top of the stack first.  ``radio`` is the
#: transceiver's analog front end (air time), ``idle-sleep`` the core's
#: non-instruction costs (wakeup ramps, event tokens, idle leakage).
LAYERS = ("app", "aggregation", "reliable", "aodv", "mac", "radio",
          "idle-sleep")

#: Default handler-tag (event name) -> layer.  Tags the map does not
#: know fall back to ``app``.
HANDLER_LAYERS = {
    "boot": "app",
    "TIMER0": "app",          # application cadence timers (blink, sense)
    "TIMER1": "reliable",     # retransmit timer (repro.netstack.reliable)
    "TIMER2": "mac",          # CSMA backoff timer (repro.netstack.mac)
    "RADIO_RX": "mac",        # word arrival enters through the MAC
    "RADIO_TX_DONE": "mac",
    "SENSOR_IRQ": "app",
    "QUERY_DONE": "app",
    "SOFT": "aodv",           # deferred-work chains (discovery/forwarding)
}

#: Symbolicated function-name prefix -> layer; longest prefix wins.
FUNCTION_LAYERS = {
    "mac_": "mac",
    "agg_": "aggregation",
    "rel_": "reliable",
    "aodv_": "aodv",
    "disc_": "aodv",
    "rt_": "aodv",
    "tx_": "mac",
    "rs_": "reliable",
}


def handler_layer(tag):
    """The protocol layer a handler tag defaults to."""
    return HANDLER_LAYERS.get(tag, "app")


def function_layer(function, tag=None):
    """The protocol layer for a symbolicated *function* name.

    Falls back to :func:`handler_layer` on *tag* when the function is
    unknown or carries no layer-identifying prefix.
    """
    if function:
        best = None
        for prefix, layer in FUNCTION_LAYERS.items():
            if function.startswith(prefix) and \
                    (best is None or len(prefix) > len(best[0])):
                best = (prefix, layer)
        if best is not None:
            return best[1]
    return handler_layer(tag)
