"""A reliable MAC layer: acknowledgments with timer-based retransmission.

This extension exercises the timer coprocessor's cancel semantics in
real software.  Section 3.2: cancelling a running timer still inserts
the timer's token into the event queue, "to avoid the race condition in
which the core attempts to cancel a timer register that has already
expired ... The software running on the core must therefore maintain
information about which timer registers it has canceled."

The sender's protocol, exactly that pattern:

* ``rel_send`` transmits the staged packet and arms timer 1 with the
  retransmission timeout;
* on ACK arrival, the handler *cancels* timer 1 and sets the
  ``CANCELLED`` flag -- the cancellation token is already in flight;
* the TIMER1 handler checks the flag: when set, the token is the echo
  of a cancellation (delivery succeeded) and is discarded; otherwise the
  timeout is real and the packet is retransmitted, up to ``MAX_RETRIES``.

The receiver acknowledges every reliable DATA packet and suppresses
duplicate deliveries by (source, sequence) tracking.
"""

from repro.asm import assemble, link
from repro.isa.events import Event
from repro.netstack.layout import APP_BASE_ADDR, equates
from repro.netstack.mac import mac_source
from repro.netstack.runtime import boot_source

#: Packet type for acknowledgments (DATA/RREQ/RREP are 1-3).
PKT_TYPE_ACK = 4

#: Sender state (DMEM words).  The APP_BASE scratch region spans
#: 0x010-0x01F (RX_BUF starts at 0x020), so all state must stay within
#: sixteen words of APP_BASE.
REL_PENDING = APP_BASE_ADDR + 0       # 1 while waiting for an ACK
REL_SEQ = APP_BASE_ADDR + 1           # sequence awaiting acknowledgment
REL_RETRIES = APP_BASE_ADDR + 2       # retransmissions remaining
REL_CANCELLED = APP_BASE_ADDR + 3     # timer-1 cancellation flag (§3.2)
REL_DELIVERED = APP_BASE_ADDR + 4     # packets confirmed delivered
REL_FAILED = APP_BASE_ADDR + 5        # packets given up on
REL_RETX = APP_BASE_ADDR + 6          # retransmissions performed

#: Receiver state.
REL_RX_DELIVERED = APP_BASE_ADDR + 8   # unique packets delivered up
REL_RX_DUPS = APP_BASE_ADDR + 9        # duplicates suppressed
REL_RX_LAST_SRC = APP_BASE_ADDR + 10
REL_RX_LAST_SEQ = APP_BASE_ADDR + 11
REL_ACKS_SENT = APP_BASE_ADDR + 12
REL_RX_VALUE = APP_BASE_ADDR + 13      # last delivered payload word

#: Default retransmission timeout in timer ticks (~30 ms covers the
#: ~14 ms data + ACK air time at 19.2 kbps) and retry budget.
RETRY_TIMEOUT_TICKS = 30_000
MAX_RETRIES = 3

#: DMEM cells where the reliable-MAC assembly keeps its counters, by
#: metric name; harvested into the metrics registry as
#: ``<node>.reliable.<name>``.  Only meaningful for programs linked with
#: this module (the cells live in the APP_BASE scratch region).
RELIABLE_COUNTER_CELLS = {
    "delivered": REL_DELIVERED,
    "failed": REL_FAILED,
    "retransmissions": REL_RETX,
    "rx_delivered": REL_RX_DELIVERED,
    "rx_duplicates": REL_RX_DUPS,
    "acks_sent": REL_ACKS_SENT,
}


def read_reliable_counters(dmem):
    """Harvest the reliable layer's DMEM counters from data memory."""
    return {name: dmem.peek(address)
            for name, address in RELIABLE_COUNTER_CELLS.items()}


def ack_journey_key(packet):
    """Journey identity of a reliable-MAC acknowledgment, or ``None``.

    ACKs are single-hop: the receiver unicasts them straight back, so
    (receiver, original sender, acknowledged seq) pins one ACK flight.
    Retransmitted DATA triggers a fresh ACK with the same key; the
    journey tracker folds those into one journey, which is exactly the
    protocol's view (any one of them settles the retransmission timer).
    """
    if packet["type"] != PKT_TYPE_ACK:
        return None
    return ("ack", packet["src"], packet["dst"], packet["seq"])


def reliable_source(timeout_ticks=RETRY_TIMEOUT_TICKS,
                    max_retries=MAX_RETRIES):
    header = equates() + """
    .equ TYPE_ACK, %d
    .equ PENDING, %d
    .equ RSEQ, %d
    .equ RETRIES, %d
    .equ CANCELLED, %d
    .equ DELIVERED, %d
    .equ FAILED, %d
    .equ RETX, %d
    .equ RX_DELIVERED, %d
    .equ RX_DUPS, %d
    .equ RX_LAST_SRC, %d
    .equ RX_LAST_SEQ, %d
    .equ ACKS_SENT, %d
    .equ RX_VALUE, %d
    .equ TIMEOUT, %d
    .equ MAX_RETRIES, %d
""" % (PKT_TYPE_ACK, REL_PENDING, REL_SEQ, REL_RETRIES, REL_CANCELLED,
       REL_DELIVERED, REL_FAILED, REL_RETX, REL_RX_DELIVERED, REL_RX_DUPS,
       REL_RX_LAST_SRC, REL_RX_LAST_SEQ, REL_ACKS_SENT, REL_RX_VALUE,
       timeout_ticks, max_retries)
    return header + r"""
rel_init:
    st r0, PENDING(r0)
    st r0, CANCELLED(r0)
    st r0, DELIVERED(r0)
    st r0, FAILED(r0)
    st r0, RETX(r0)
    st r0, RX_DELIVERED(r0)
    st r0, RX_DUPS(r0)
    st r0, ACKS_SENT(r0)
    movi r1, 0xFFFF
    st r1, RX_LAST_SRC(r0)
    st r1, RX_LAST_SEQ(r0)
    ret

; Arm timer 1 with the retransmission timeout.
rel_arm:
    movi r1, 1
    movi r2, TIMEOUT
    schedlo r1, r2
    ret

; -------------------------------------------------------------- rel_send
; Transmit the packet staged at TX_BUF reliably: remember its sequence,
; arm the retransmission timer, and wait for the ACK.
rel_send:
    push lr
    movi r1, 1
    st r1, PENDING(r0)
    st r0, CANCELLED(r0)
    movi r1, MAX_RETRIES
    st r1, RETRIES(r0)
    ld r1, TX_BUF + PKT_SEQ(r0)
    st r1, RSEQ(r0)
    jal mac_send
    jal rel_arm
    pop lr
    ret

; -------------------------------------------------- rel_timer_handler
; TIMER1 token: either a real timeout (retransmit or give up), or the
; echo of a cancellation issued by the ACK path (discard) -- the
; Section 3.2 software contract.
rel_timer_handler:
    ld r1, CANCELLED(r0)
    beqz r1, .real_timeout
    st r0, CANCELLED(r0)    ; consume the cancellation token
    done
.real_timeout:
    ld r1, PENDING(r0)
    bnez r1, .still_waiting
    done                    ; stale timeout; nothing in flight
.still_waiting:
    ld r1, RETRIES(r0)
    bnez r1, .retransmit
    ; out of retries: give up on this packet
    st r0, PENDING(r0)
    ld r1, FAILED(r0)
    addi r1, 1
    st r1, FAILED(r0)
    done
.retransmit:
    subi r1, 1
    st r1, RETRIES(r0)
    ld r1, RETX(r0)
    addi r1, 1
    st r1, RETX(r0)
    jal mac_send            ; TX_BUF still holds the packet
    jal rel_arm
    done

; -------------------------------------------------------- mac_rx_dispatch
; Upper layer for reliable links: handle ACKs on the sender side and
; DATA on the receiver side (deliver once, acknowledge always).
mac_rx_dispatch:
    push lr
    ld r1, RX_BUF + PKT_TYPE(r0)
    movi r2, TYPE_ACK
    sub r2, r1
    bnez r2, .not_ack
    jmp .got_ack
.not_ack:
    movi r2, TYPE_DATA
    sub r2, r1
    bnez r2, .ignore
    jmp .got_data
.ignore:
    pop lr
    ret

.got_ack:
    ; Does this ACK match the packet in flight?
    ld r1, PENDING(r0)
    beqz r1, .ack_done
    ld r1, RX_BUF + PKT_SEQ(r0)
    ld r2, RSEQ(r0)
    sub r2, r1
    bnez r2, .ack_done      ; an old ACK; the timer keeps running
    ; Delivered: stop the retransmission timer.  The cancel inserts a
    ; TIMER1 token (or the expiry already did); flag it for discard.
    st r0, PENDING(r0)
    movi r1, 1
    st r1, CANCELLED(r0)
    movi r1, 1
    cancel r1
    ld r1, DELIVERED(r0)
    addi r1, 1
    st r1, DELIVERED(r0)
.ack_done:
    pop lr
    ret

.got_data:
    ; Acknowledge: ACK packet [dst=sender, src=me, ACK, seq, len=0].
    ld r1, RX_BUF + PKT_SRC(r0)
    st r1, TX_BUF + PKT_DST(r0)
    ld r2, NODE_ID(r0)
    st r2, TX_BUF + PKT_SRC(r0)
    movi r2, TYPE_ACK
    st r2, TX_BUF + PKT_TYPE(r0)
    ld r2, RX_BUF + PKT_SEQ(r0)
    st r2, TX_BUF + PKT_SEQ(r0)
    st r0, TX_BUF + PKT_LEN(r0)
    jal mac_send
    ld r2, ACKS_SENT(r0)
    addi r2, 1
    st r2, ACKS_SENT(r0)
    ; Duplicate suppression: deliver each (src, seq) once.
    ld r1, RX_BUF + PKT_SRC(r0)
    ld r2, RX_LAST_SRC(r0)
    sub r2, r1
    bnez r2, .fresh
    ld r1, RX_BUF + PKT_SEQ(r0)
    ld r2, RX_LAST_SEQ(r0)
    sub r2, r1
    bnez r2, .fresh
    ld r1, RX_DUPS(r0)
    addi r1, 1
    st r1, RX_DUPS(r0)
    pop lr
    ret
.fresh:
    ld r1, RX_BUF + PKT_SRC(r0)
    st r1, RX_LAST_SRC(r0)
    ld r1, RX_BUF + PKT_SEQ(r0)
    st r1, RX_LAST_SEQ(r0)
    ld r1, RX_BUF + PKT_HDR(r0)     ; payload[0]: the delivered value
    st r1, RX_VALUE(r0)
    ld r1, RX_DELIVERED(r0)
    addi r1, 1
    st r1, RX_DELIVERED(r0)
    pop lr
    ret

; Driver: each SOFT event reliably sends the packet staged at TX_BUF.
rel_soft_handler:
    jal rel_send
    done
"""


def build_reliable_node(node_id, timeout_ticks=RETRY_TIMEOUT_TICKS,
                        max_retries=MAX_RETRIES):
    """A node speaking the reliable MAC (both sender and receiver roles)."""
    boot = boot_source(
        handlers={Event.RADIO_RX: "mac_rx_handler",
                  Event.TIMER1: "rel_timer_handler",
                  Event.SOFT: "rel_soft_handler"},
        init_calls=("mac_rx_init", "rel_init"),
        node_id=node_id,
        start_rx=True,
    )
    return link([assemble(boot, name="boot"),
                 assemble(mac_source(), name="mac"),
                 assemble(reliable_source(timeout_ticks, max_retries),
                          name="reliable")])
