"""Benchmark driver programs for the Table 1 handler measurements.

Each build produces a node image that isolates one of the paper's
software tasks so its dynamic instruction count and energy can be
measured (Section 4.5):

* ``build_tx_node``  -- *Packet Transmission*: a SOFT event transmits the
  packet the harness staged at ``TX_BUF``.
* ``build_rx_node``  -- *Packet Reception*: the MAC assembles and
  verifies incoming packets; the upper-layer dispatch is a stub so only
  reception is measured.
* ``build_aodv_node`` -- *AODV Route Reply* and *AODV Packet Forward*:
  the full MAC + routing stack with the threshold app as the local
  consumer (also used by the network examples).
"""

from repro.asm import assemble, link
from repro.isa.events import Event
from repro.netstack.aodv import aodv_source
from repro.netstack.apps import threshold_source
from repro.netstack.layout import equates
from repro.netstack.mac import mac_source
from repro.netstack.runtime import boot_source


def tx_driver_source():
    """SOFT-event handler that transmits the staged packet."""
    return equates() + """
tx_soft_handler:
    jal mac_send
    done
"""


def null_dispatch_source():
    """A stub upper layer: accept the packet, do nothing."""
    return equates() + """
mac_rx_dispatch:
    ret
"""


def build_tx_node(node_id=0):
    boot = boot_source(handlers={Event.SOFT: "tx_soft_handler"},
                       node_id=node_id)
    return link([assemble(boot, name="boot"),
                 assemble(mac_source(), name="mac"),
                 assemble(tx_driver_source(), name="txdrv"),
                 assemble(null_dispatch_source(), name="nulldisp")])


def build_rx_node(node_id=1):
    boot = boot_source(handlers={Event.RADIO_RX: "mac_rx_handler"},
                       init_calls=("mac_rx_init",),
                       node_id=node_id, start_rx=True)
    return link([assemble(boot, name="boot"),
                 assemble(mac_source(), name="mac"),
                 assemble(null_dispatch_source(), name="nulldisp")])


def discovery_driver_source():
    """SOFT-event handler that originates route discovery for the target
    node id staged at ``RREQ_TARGET`` by the harness."""
    return equates() + """
disc_soft_handler:
    ld r1, RREQ_TARGET(r0)
    jal aodv_send_rreq
    done
"""


def build_discovery_node(node_id, csma=False):
    """A full AODV node that can also originate RREQs via SOFT events."""
    handlers = {Event.RADIO_RX: "mac_rx_handler",
                Event.SOFT: "disc_soft_handler"}
    if csma:
        handlers[Event.TIMER2] = "mac_backoff_expired"
    boot = boot_source(handlers=handlers,
                       init_calls=("mac_rx_init", "rt_init", "thresh_init"),
                       node_id=node_id, start_rx=True)
    return link([assemble(boot, name="boot"),
                 assemble(mac_source(), name="mac"),
                 assemble(aodv_source(), name="aodv"),
                 assemble(threshold_source(), name="thresh"),
                 assemble(discovery_driver_source(), name="disc")])


def build_aodv_node(node_id, csma=False):
    handlers = {Event.RADIO_RX: "mac_rx_handler"}
    if csma:
        handlers[Event.TIMER2] = "mac_backoff_expired"
    boot = boot_source(handlers=handlers,
                       init_calls=("mac_rx_init", "rt_init", "thresh_init"),
                       node_id=node_id, start_rx=True)
    return link([assemble(boot, name="boot"),
                 assemble(mac_source(), name="mac"),
                 assemble(aodv_source(), name="aodv"),
                 assemble(threshold_source(), name="thresh")])
