"""A data-gathering node: sample periodically and report to a sink.

This is the paper's motivating workload (Section 1: habitat and
environment monitoring with "data gathering nodes").  Each node runs a
periodic timer; every period it polls its sensor through the message
coprocessor and transmits the reading as a DATA packet toward the sink
through the MAC + AODV stack, then goes back to sleep.

The next hop toward the sink lives at ``SAMP_NEXT_HOP`` in DMEM (either
poked by the harness or filled from a discovered route).
"""

from repro.asm import assemble, link
from repro.isa.events import Event
from repro.netstack.aodv import aodv_source
from repro.netstack.apps import threshold_source
from repro.netstack.layout import APP_BASE_ADDR, equates
from repro.netstack.mac import mac_source
from repro.netstack.runtime import boot_source

SAMP_NEXT_HOP = APP_BASE_ADDR + 8   # MAC next hop toward the sink
SAMP_SINK = APP_BASE_ADDR + 9       # final destination node id
SAMP_SEQ = APP_BASE_ADDR + 10       # outgoing sequence number
SAMP_SENT = APP_BASE_ADDR + 11      # packets sent
SAMP_LAST = APP_BASE_ADDR + 12      # last sample value

#: Default sample period in timer ticks.
SAMPLE_PERIOD_TICKS = 100_000  # 100 ms


def sampling_source(period_ticks=SAMPLE_PERIOD_TICKS):
    """Assembly source of the sample-and-report application."""
    header = equates() + """
    .equ NEXT_HOP, %d
    .equ SINK, %d
    .equ SEQ, %d
    .equ SENT, %d
    .equ LAST, %d
    .equ PERIOD_LO, %d
    .equ PERIOD_HI, %d
""" % (SAMP_NEXT_HOP, SAMP_SINK, SAMP_SEQ, SAMP_SENT, SAMP_LAST,
       period_ticks & 0xFFFF, (period_ticks >> 16) & 0xFF)
    return header + r"""
samp_init:
    st r0, SEQ(r0)
    st r0, SENT(r0)
    st r0, LAST(r0)
    ret

samp_arm:
    movi r1, 0
    movi r2, PERIOD_HI
    schedhi r1, r2
    movi r2, PERIOD_LO
    schedlo r1, r2
    ret

; TIMER0: poll the sensor and re-arm the period.
samp_timer_handler:
    movi r15, CMD_QUERY + 1
    jal samp_arm
    done

; QUERY_DONE: package the sample and send it toward the sink.
samp_query_handler:
    mov r1, r15                 ; the sample
    st r1, LAST(r0)
    ; build the DATA packet in TX_BUF
    ld r2, NEXT_HOP(r0)
    st r2, TX_BUF + PKT_DST(r0)
    ld r2, NODE_ID(r0)
    st r2, TX_BUF + PKT_SRC(r0)
    movi r2, TYPE_DATA
    st r2, TX_BUF + PKT_TYPE(r0)
    ld r2, SEQ(r0)
    st r2, TX_BUF + PKT_SEQ(r0)
    addi r2, 1
    st r2, SEQ(r0)
    movi r2, 3
    st r2, TX_BUF + PKT_LEN(r0)
    ld r2, SINK(r0)
    st r2, TX_BUF + PKT_HDR(r0)      ; payload[0] = final destination
    st r1, TX_BUF + PKT_HDR + 1(r0)  ; payload[1] = the sample
    ld r2, NODE_ID(r0)
    st r2, TX_BUF + PKT_HDR + 2(r0)  ; payload[2] = reporter id
    jal mac_send
    ld r2, SENT(r0)
    addi r2, 1
    st r2, SENT(r0)
    done
"""


def build_sampling_node(node_id, period_ticks=SAMPLE_PERIOD_TICKS):
    """A leaf node: sample + report, plus the full MAC/AODV stack so it
    can also relay traffic for others."""
    boot = boot_source(
        handlers={Event.TIMER0: "samp_timer_handler",
                  Event.QUERY_DONE: "samp_query_handler",
                  Event.RADIO_RX: "mac_rx_handler"},
        init_calls=("mac_rx_init", "rt_init", "thresh_init", "samp_init"),
        node_id=node_id,
        start_rx=True,
        extra="    jal samp_arm",
    )
    return link([assemble(boot, name="boot"),
                 assemble(mac_source(), name="mac"),
                 assemble(aodv_source(), name="aodv"),
                 assemble(threshold_source(), name="thresh"),
                 assemble(sampling_source(period_ticks), name="samp")])
