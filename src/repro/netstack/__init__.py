"""The sensor-network software stack, written in SNAP assembly.

This package is the reproduction of the paper's benchmark software
(Section 4.2): an IEEE 802.11-inspired MAC layer, a simplified AODV
routing layer, the two sensor applications (Temperature Sense and Range
Comparison / Threshold), and the TinyOS-comparison programs (Blink,
Sense, and the MICA high-speed radio stack port).  Everything here
assembles with :mod:`repro.asm` and runs on the simulated SNAP/LE core.

Modules export functions that return assembly source text; the
``build_*`` helpers link complete programs (boot code + libraries + app).
"""

from repro.netstack.layout import (
    PKT_TYPE_DATA,
    PKT_TYPE_RREP,
    PKT_TYPE_RREQ,
    RX_BUF,
    TX_BUF,
    checksum,
    make_packet,
)
from repro.netstack.runtime import boot_source
from repro.netstack.mac import mac_source
from repro.netstack.aodv import aodv_source
from repro.netstack.apps import (
    build_network_node,
    build_temperature_app,
    build_threshold_app,
)
from repro.netstack.tinyos_ports import (
    build_blink_app,
    build_radiostack_app,
    build_sense_app,
)

__all__ = [
    "PKT_TYPE_DATA",
    "PKT_TYPE_RREP",
    "PKT_TYPE_RREQ",
    "RX_BUF",
    "TX_BUF",
    "checksum",
    "make_packet",
    "boot_source",
    "mac_source",
    "aodv_source",
    "build_network_node",
    "build_temperature_app",
    "build_threshold_app",
    "build_blink_app",
    "build_radiostack_app",
    "build_sense_app",
]
