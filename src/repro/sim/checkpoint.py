"""Full-state checkpoint/restore with deterministic replay.

:func:`capture` freezes a live :class:`~repro.network.NetworkSimulator`
(or a standalone :class:`~repro.node.SensorNode`) into a versioned,
JSON-serializable :class:`Checkpoint`; :func:`restore` rebuilds a fresh
simulator from one.  The contract is *bit-identity*: a simulation
checkpointed at time ``t`` and resumed runs exactly like one that was
never interrupted -- every meter accumulator at full float precision,
every trace timestamp, every radio word (proven by
:mod:`repro.sim.differential` and ``tests/test_checkpoint.py``).

What is captured
================

* **Kernel** -- clock, the handle counter (events at equal times run in
  handle order, so the tie-break sequence must survive), and every live
  heap entry.  Callbacks are serialized as typed descriptors
  (``cpu_step``, ``timer_expire``, ``radio_tx_done``, ``sensor_fire``)
  and re-bound to the restored components.  Host-side observability
  callbacks (watchdog ticks, timeline samplers, telemetry flushes, the
  blackbox's own checkpoint tick) are *skipped* and listed under
  ``skipped_callbacks`` -- they never affect simulation state, and the
  caller re-arms observability after restore.
* **Per node** -- register file, carry, pc, LFSR, IMEM/DMEM contents and
  access counters (which is where the guest netstack's MAC/AODV/reliable
  tables live), predecoded-IMEM validity, execution mode, handler
  table/tags, instruction budget, event-queue tokens and counters,
  message-coprocessor FIFOs and statistics, timer-coprocessor registers,
  radio state including the TX queue and any word in flight, LED-port
  history, and sensors (including their noise RNG streams).
* **Energy accounting** -- every :class:`~repro.energy.EnergyMeter`
  accumulator at full precision, per-class, per-bucket and per-handler.
* **Channel** -- physics parameters, the Bernoulli noise RNG state,
  active/recent transmission intervals, and counters.

What is recomputed on restore
=============================

Pure caches (the reference interpreter's decode cache), observability
(trace functions, ``obs`` contexts, journey trackers -- reattach after
restore), and program symbol/line tables (``processor.program`` comes
back ``None``; checkpoints hold raw memory images, not linker metadata).

Schema
======

``Checkpoint.data`` is a plain dict with ``schema ==
"repro.sim.checkpoint/1"``; loading any other version raises
:class:`CheckpointVersionError`.  ``tests/goldens/checkpoint_v1.json``
pins the layout against accidental drift.
"""

import json

import numpy as np

from repro.core.event_queue import EventToken
from repro.core.processor import CoreConfig, Mode
from repro.coprocessors.timer import NUM_TIMERS
from repro.energy.accounting import ClassStats, EnergyMeter, HandlerStats
from repro.energy.calibration import DEFAULT_CALIBRATION, Calibration
from repro.energy.model import CORE_BUCKETS
from repro.isa.events import Event
from repro.isa.opcodes import InstrClass, Unit
from repro.radio.transceiver import RadioConfig, RadioMode
from repro.sensors.sensor import (
    ConstantSensor,
    InterruptSensor,
    TraceSensor,
)
from repro.sensors.adc import Adc
from repro.sensors.temperature import TemperatureSensor

SCHEMA = "repro.sim.checkpoint/1"

#: Host-side (observability) callbacks that may sit on the kernel heap
#: but carry no simulation state: capture skips them and records the
#: skip.  The caller re-arms observability after restore.
_HOST_CALLBACK_QUALNAMES = (
    "Watchdog._tick",
    "TimelineSampler._tick",
    "Blackbox._checkpoint_tick",
    "TelemetryExporter._tick",
)


class CheckpointError(Exception):
    """Base class for checkpoint capture/restore failures."""


class CheckpointCaptureError(CheckpointError):
    """The live simulation holds state this schema cannot serialize."""


class CheckpointVersionError(CheckpointError):
    """The checkpoint's ``schema`` field is not a supported version."""

    def __init__(self, found):
        self.found = found
        super().__init__(
            "unsupported checkpoint schema %r (this build reads %r)"
            % (found, SCHEMA))


class Checkpoint:
    """A captured simulation state: a JSON-able dict plus conveniences."""

    def __init__(self, data):
        _require_schema(data)
        self.data = data

    @property
    def schema(self):
        return self.data["schema"]

    @property
    def kind(self):
        """``"network"`` or ``"node"``."""
        return self.data["kind"]

    @property
    def time_s(self):
        """Simulation time at which the checkpoint was taken."""
        return self.data["time_s"]

    def to_json(self, indent=None):
        """Serialize to JSON text (floats round-trip exactly)."""
        return json.dumps(self.data, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        return cls(json.loads(text))

    def save(self, path):
        with open(path, "w") as handle:
            handle.write(self.to_json(indent=2))
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls.from_json(handle.read())

    def restore(self):
        """Rebuild a fresh simulator; see :func:`restore`."""
        return restore(self)


def _require_schema(data):
    if not isinstance(data, dict) or data.get("schema") != SCHEMA:
        found = data.get("schema") if isinstance(data, dict) else None
        raise CheckpointVersionError(found)


# -- small codecs -------------------------------------------------------------


def _pack_words(words):
    """Pack a word list as a hex string, four digits per 16-bit word."""
    return "".join("%04x" % (word & 0xFFFF) for word in words)


def _unpack_words(text):
    return [int(text[index:index + 4], 16)
            for index in range(0, len(text), 4)]


def _rng_state(rng):
    kind, keys, pos, has_gauss, cached = rng.get_state()
    return {"kind": kind, "keys": [int(key) for key in keys],
            "pos": int(pos), "has_gauss": int(has_gauss),
            "cached_gaussian": float(cached)}


def _restore_rng(rng, state):
    rng.set_state((state["kind"],
                   np.array(state["keys"], dtype=np.uint32),
                   state["pos"], state["has_gauss"],
                   state["cached_gaussian"]))


def _memory_state(bank):
    return {"words_hex": _pack_words(bank._words),
            "reads": bank.reads, "writes": bank.writes}


def _restore_memory(bank, state):
    words = _unpack_words(state["words_hex"])
    if len(words) != bank.size_words:
        raise CheckpointError(
            "%s: checkpoint holds %d words for a %d-word bank"
            % (bank.name, len(words), bank.size_words))
    # Direct assignment: counters are restored verbatim and the
    # predecode write hook is rebuilt separately from the captured
    # validity set.
    bank._words = words
    bank.reads = state["reads"]
    bank.writes = state["writes"]


def _calibration_state(calibration):
    if calibration == DEFAULT_CALIBRATION:
        return "default"
    return {
        "imem_read_pj": calibration.imem_read_pj,
        "dmem_access_pj": calibration.dmem_access_pj,
        "fetch_base_pj": calibration.fetch_base_pj,
        "fetch_extra_word_pj": calibration.fetch_extra_word_pj,
        "decode_pj": calibration.decode_pj,
        "unit_pj": {unit.name: pj
                    for unit, pj in calibration.unit_pj.items()},
        "slow_bus_pj": calibration.slow_bus_pj,
        "mem_if_mem_op_pj": calibration.mem_if_mem_op_pj,
        "mem_if_other_pj": calibration.mem_if_other_pj,
        "misc_base_pj": calibration.misc_base_pj,
        "misc_extra_word_pj": calibration.misc_extra_word_pj,
        "wakeup_pj": calibration.wakeup_pj,
        "event_token_pj": calibration.event_token_pj,
    }


def _restore_calibration(state):
    if state == "default":
        return DEFAULT_CALIBRATION
    fields = dict(state)
    fields["unit_pj"] = {Unit[name]: pj
                         for name, pj in state["unit_pj"].items()}
    return Calibration(**fields)


def _config_state(config):
    return {
        "voltage": config.voltage,
        "imem_words": config.imem_words,
        "dmem_words": config.dmem_words,
        "event_queue_capacity": config.event_queue_capacity,
        "event_queue_policy": config.event_queue_policy,
        "fifo_capacity": config.fifo_capacity,
        "timer_tick_hz": config.timer_tick_hz,
        "leakage_power": config.leakage_power,
        "calibration": _calibration_state(config.calibration),
        "max_instructions": config.max_instructions,
        "fast_path": config.fast_path,
    }


def _restore_config(state):
    fields = dict(state)
    fields["calibration"] = _restore_calibration(state["calibration"])
    # trace_fn is host-side observability and is never serialized;
    # reattach one after restore if needed.
    return CoreConfig(trace_fn=None, **fields)


def _radio_config_state(config):
    return {"bit_rate": config.bit_rate, "word_bits": config.word_bits,
            "tx_power_w": config.tx_power_w, "rx_power_w": config.rx_power_w}


# -- sensors ------------------------------------------------------------------

# Each supported sensor type has a (capture, restore) pair; restore
# receives the node's kernel because interrupt sensors schedule on it.


def _capture_constant(sensor):
    return {"value": sensor.value}


def _restore_constant(state, kernel):
    return ConstantSensor(state["value"])


def _capture_temperature(sensor):
    return {
        "base_c": sensor.base_c, "amplitude_c": sensor.amplitude_c,
        "period_s": sensor.period_s, "noise_c": sensor.noise_c,
        "adc": {"bits": sensor.adc.bits, "low": sensor.adc.low,
                "high": sensor.adc.high},
        "rng": _rng_state(sensor._rng), "reads": sensor.reads,
    }


def _restore_temperature(state, kernel):
    adc = state["adc"]
    sensor = TemperatureSensor(
        base_c=state["base_c"], amplitude_c=state["amplitude_c"],
        period_s=state["period_s"], noise_c=state["noise_c"],
        adc=Adc(bits=adc["bits"], low=adc["low"], high=adc["high"]))
    _restore_rng(sensor._rng, state["rng"])
    sensor.reads = state["reads"]
    return sensor


def _capture_trace_sensor(sensor):
    return {"samples": list(sensor.samples), "sample_hz": sensor.sample_hz,
            "wrap": sensor.wrap, "reads": sensor.reads}


def _restore_trace_sensor(state, kernel):
    sensor = TraceSensor(state["samples"], sample_hz=state["sample_hz"],
                         wrap=state["wrap"])
    sensor.reads = state["reads"]
    return sensor


def _capture_interrupt_sensor(sensor):
    return {
        "values": list(sensor._values) if sensor._values is not None
        else None,
        "value_index": sensor._value_index, "latched": sensor._latched,
        "fires": sensor.fires, "rng": _rng_state(sensor._rng),
    }


def _restore_interrupt_sensor(state, kernel):
    sensor = InterruptSensor(kernel, values=state["values"])
    sensor._value_index = state["value_index"]
    sensor._latched = state["latched"]
    sensor.fires = state["fires"]
    _restore_rng(sensor._rng, state["rng"])
    return sensor


_SENSOR_CODECS = {
    "ConstantSensor": (ConstantSensor, _capture_constant,
                       _restore_constant),
    "TemperatureSensor": (TemperatureSensor, _capture_temperature,
                          _restore_temperature),
    "TraceSensor": (TraceSensor, _capture_trace_sensor,
                    _restore_trace_sensor),
    "InterruptSensor": (InterruptSensor, _capture_interrupt_sensor,
                        _restore_interrupt_sensor),
}


def _capture_sensor(sensor):
    for type_name, (cls, capture_fn, _) in _SENSOR_CODECS.items():
        if type(sensor) is cls:
            return {"type": type_name, "state": capture_fn(sensor)}
    raise CheckpointCaptureError(
        "sensor type %s has no checkpoint codec; supported: %s"
        % (type(sensor).__name__, ", ".join(sorted(_SENSOR_CODECS))))


def _restore_sensor(state, kernel):
    try:
        _, _, restore_fn = _SENSOR_CODECS[state["type"]]
    except KeyError:
        raise CheckpointError(
            "unknown sensor type %r in checkpoint" % (state["type"],)) \
            from None
    return restore_fn(state["state"], kernel)


# -- energy meter -------------------------------------------------------------


def _meter_state(meter):
    return {
        "instructions": meter.instructions,
        "cycles": meter.cycles,
        "total_energy": meter.total_energy,
        "wakeups": meter.wakeups,
        "wakeup_energy": meter.wakeup_energy,
        "event_tokens": meter.event_tokens,
        "event_token_energy": meter.event_token_energy,
        "idle_time": meter.idle_time,
        "idle_energy": meter.idle_energy,
        "busy_time": meter.busy_time,
        "dispatch_count": meter.dispatch_count,
        "dispatch_latency_total": meter.dispatch_latency_total,
        "dispatch_latency_max": meter.dispatch_latency_max,
        "imem_energy": meter.imem_energy,
        "dmem_energy": meter.dmem_energy,
        "by_bucket": {bucket: meter.by_bucket[bucket]
                      for bucket in CORE_BUCKETS},
        "by_class": {cls.name: [stats.count, stats.energy]
                     for cls, stats in sorted(meter.by_class.items(),
                                              key=lambda kv: kv[0].name)},
        "by_handler": {tag: [stats.instructions, stats.cycles,
                             stats.energy, stats.invocations]
                       for tag, stats in sorted(meter.by_handler.items())},
    }


def _restore_meter(meter, state):
    fresh = EnergyMeter()
    meter.__dict__.update(fresh.__dict__)
    for name in ("instructions", "cycles", "total_energy", "wakeups",
                 "wakeup_energy", "event_tokens", "event_token_energy",
                 "idle_time", "idle_energy", "busy_time", "dispatch_count",
                 "dispatch_latency_total", "dispatch_latency_max",
                 "imem_energy", "dmem_energy"):
        setattr(meter, name, state[name])
    for bucket in CORE_BUCKETS:
        meter.by_bucket[bucket] = state["by_bucket"][bucket]
    for name, (count, energy) in state["by_class"].items():
        meter.by_class[InstrClass[name]] = ClassStats(count=count,
                                                      energy=energy)
    for tag, fields in state["by_handler"].items():
        instructions, cycles, energy, invocations = fields
        meter.by_handler[tag] = HandlerStats(
            instructions=instructions, cycles=cycles, energy=energy,
            invocations=invocations)


# -- per-node capture/restore -------------------------------------------------


def _fifo_state(fifo):
    return {"words": fifo.words(), "pushes": fifo.pushes,
            "pops": fifo.pops, "max_occupancy": fifo.max_occupancy}


def _restore_fifo(fifo, state):
    fifo.restore(state["words"], pushes=state["pushes"],
                 pops=state["pops"], max_occupancy=state["max_occupancy"])


def _node_state(node):
    processor = node.processor
    ports = processor.mcp._ports
    if set(ports) - {0} or (0 in ports and ports[0] is not node.leds):
        raise CheckpointCaptureError(
            "%s: custom output ports have no checkpoint codec" % node.name)
    state = {
        "id": node.node_id,
        "name": node.name,
        "position": list(node.position),
        "loaded": node.loaded,
        "config": _config_state(processor.config),
        "radio_config": _radio_config_state(node.radio.config),
        "processor": _processor_state(processor),
        "radio": _radio_state(node.radio),
        "leds": {"count": node.leds.leds,
                 "history": [[time, value]
                             for time, value in node.leds.history]},
        "sensors": {str(sensor_id): _capture_sensor(sensor)
                    for sensor_id, sensor in sorted(node.sensors.items())},
    }
    return state


def _processor_state(processor):
    predecoded = []
    if processor._predec is not None:
        predecoded = [pc for pc, slot in enumerate(processor._predec)
                      if slot is not None]
    timer = processor.timer
    return {
        "pc": processor.pc,
        "carry": processor.carry,
        "mode": processor.mode.value,
        "current_tag": processor.current_tag,
        "handler_table": list(processor.handler_table),
        "handler_tags": {event.name: tag
                         for event, tag in processor.handler_tags.items()},
        "registers": processor.regs.snapshot(),
        "register_reads": processor.regs.reads,
        "register_writes": processor.regs.writes,
        "lfsr": processor.lfsr.state,
        "sleep_start": processor._sleep_start,
        "instruction_budget_used": processor._instruction_budget_used,
        "bursts": processor.bursts,
        "burst_instructions": processor.burst_instructions,
        "imem": _memory_state(processor.imem),
        "dmem": _memory_state(processor.dmem),
        "predecoded": predecoded,
        "meter": _meter_state(processor.meter),
        "event_queue": {
            "tokens": [[token.event.name, token.raised_at]
                       for token in processor.event_queue.tokens()],
            "inserted": processor.event_queue.inserted,
            "dropped": processor.event_queue.dropped,
        },
        "mcp": {
            "incoming": _fifo_state(processor.mcp.incoming),
            "outgoing": _fifo_state(processor.mcp.outgoing),
            "awaiting_tx_data": processor.mcp._awaiting_tx_data,
            "commands_processed": processor.mcp.commands_processed,
            "tx_words": processor.mcp.tx_words,
            "rx_words": processor.mcp.rx_words,
        },
        "timer": {
            "registers": [{"high_bits": register.high_bits,
                           "running": register.running,
                           "expires_at": register.expires_at}
                          for register in timer._registers],
            "expirations": timer.expirations,
            "cancellations": timer.cancellations,
        },
    }


def _radio_state(radio):
    return {
        "mode": radio.mode.value,
        "tx_queue": list(radio._tx_queue),
        "tx_queue_depth": radio._tx_queue_depth,
        "tx_busy": radio._tx_busy,
        "rx_requested": radio._rx_requested,
        "rx_since": radio._rx_since,
        "words_sent": radio.words_sent,
        "words_received": radio.words_received,
        "words_dropped": radio.words_dropped,
        "tx_time": radio.tx_time,
        "rx_time": radio.rx_time,
    }


def _restore_node_state(node, state):
    processor = node.processor
    pstate = state["processor"]
    processor.pc = pstate["pc"]
    processor.carry = pstate["carry"]
    processor.mode = Mode(pstate["mode"])
    processor.current_tag = pstate["current_tag"]
    processor.handler_table = list(pstate["handler_table"])
    processor.handler_tags = {Event[name]: tag
                              for name, tag in
                              pstate["handler_tags"].items()}
    processor.regs._regs = [value & 0xFFFF
                            for value in pstate["registers"]]
    processor.regs.reads = pstate["register_reads"]
    processor.regs.writes = pstate["register_writes"]
    processor.lfsr._state = pstate["lfsr"]
    processor._sleep_start = pstate["sleep_start"]
    processor._instruction_budget_used = pstate["instruction_budget_used"]
    processor.bursts = pstate["bursts"]
    processor.burst_instructions = pstate["burst_instructions"]
    _restore_memory(processor.imem, pstate["imem"])
    _restore_memory(processor.dmem, pstate["dmem"])
    # Warm the predecode cache back to its captured validity; the slots
    # themselves are pure functions of IMEM and the energy/timing models,
    # so re-decoding reproduces them exactly.
    if processor._predec is not None:
        for pc in pstate["predecoded"]:
            processor._predecode(pc)
    _restore_meter(processor.meter, pstate["meter"])

    queue = processor.event_queue
    queue._tokens.clear()
    for name, raised_at in pstate["event_queue"]["tokens"]:
        queue._tokens.append(EventToken(event=Event[name],
                                        raised_at=raised_at))
    queue.inserted = pstate["event_queue"]["inserted"]
    queue.dropped = pstate["event_queue"]["dropped"]

    mcp = processor.mcp
    _restore_fifo(mcp.incoming, pstate["mcp"]["incoming"])
    _restore_fifo(mcp.outgoing, pstate["mcp"]["outgoing"])
    mcp._awaiting_tx_data = pstate["mcp"]["awaiting_tx_data"]
    mcp.commands_processed = pstate["mcp"]["commands_processed"]
    mcp.tx_words = pstate["mcp"]["tx_words"]
    mcp.rx_words = pstate["mcp"]["rx_words"]

    timer = processor.timer
    for register, rstate in zip(timer._registers,
                                pstate["timer"]["registers"]):
        register.high_bits = rstate["high_bits"]
        register.running = rstate["running"]
        register.expires_at = rstate["expires_at"]
        register.handle = None  # re-linked from the heap descriptors
    timer.expirations = pstate["timer"]["expirations"]
    timer.cancellations = pstate["timer"]["cancellations"]

    radio = node.radio
    rstate = state["radio"]
    radio.mode = RadioMode(rstate["mode"])
    radio._tx_queue = [word & 0xFFFF for word in rstate["tx_queue"]]
    radio._tx_queue_depth = rstate["tx_queue_depth"]
    radio._tx_busy = rstate["tx_busy"]
    radio._rx_requested = rstate["rx_requested"]
    radio._rx_since = rstate["rx_since"]
    radio.words_sent = rstate["words_sent"]
    radio.words_received = rstate["words_received"]
    radio.words_dropped = rstate["words_dropped"]
    radio.tx_time = rstate["tx_time"]
    radio.rx_time = rstate["rx_time"]

    node.leds.history = [(time, value)
                         for time, value in state["leds"]["history"]]
    node.leds.leds = state["leds"]["count"]
    node.loaded = state["loaded"]

    for sensor_id, sensor_state in state["sensors"].items():
        node.attach_sensor(_restore_sensor(sensor_state, node.kernel),
                           sensor_id=int(sensor_id))


# -- the kernel heap ----------------------------------------------------------


def _describe_callbacks(kernel, owners, unknown):
    """Serialize the kernel's live heap entries.

    *owners* maps component objects (processors, timer coprocessors,
    radios, sensors) to ``(kind, node_key, extra)`` descriptor stubs.
    Returns ``(events, skipped)``.
    """
    events, skipped = [], []
    for time, handle, callback, args in kernel.live_entries():
        target = getattr(callback, "__self__", None)
        name = getattr(callback, "__name__", None)
        qualname = getattr(callback, "__qualname__", repr(callback))
        owner = owners.get(id(target)) if target is not None else None
        if owner is not None:
            kind, node_key, extra = owner
            descriptor = None
            if kind == "processor" and name == "_step":
                descriptor = {"kind": "cpu_step", "node": node_key}
            elif kind == "timer" and name == "_expire":
                descriptor = {"kind": "timer_expire", "node": node_key,
                              "index": args[0]}
            elif kind == "radio" and name == "_finish_word":
                descriptor = {"kind": "radio_tx_done", "node": node_key,
                              "word": args[0], "start": args[1]}
            elif kind == "sensor" and name == "fire":
                descriptor = {"kind": "sensor_fire", "node": node_key,
                              "sensor": extra}
            if descriptor is not None:
                events.append({"time": time, "handle": handle,
                               "callback": descriptor})
                continue
        if any(qualname.endswith(host)
               for host in _HOST_CALLBACK_QUALNAMES):
            skipped.append({"time": time, "callback": qualname})
            continue
        if unknown == "skip":
            skipped.append({"time": time, "callback": qualname})
            continue
        raise CheckpointCaptureError(
            "cannot serialize kernel callback %r scheduled at t=%.9f; "
            "detach it before capture or pass unknown='skip'"
            % (qualname, time))
    return events, skipped


def _component_owners(nodes):
    """Map ``id(component) -> (kind, node_key, extra)`` for every node."""
    owners = {}
    for node_key, node in nodes:
        owners[id(node.processor)] = ("processor", node_key, None)
        owners[id(node.processor.timer)] = ("timer", node_key, None)
        owners[id(node.radio)] = ("radio", node_key, None)
        for sensor_id, sensor in node.sensors.items():
            owners[id(sensor)] = ("sensor", node_key, sensor_id)
    return owners


def _kernel_state(kernel, nodes, unknown):
    events, skipped = _describe_callbacks(kernel,
                                          _component_owners(nodes), unknown)
    state = {
        "now": kernel.now,
        "next_handle": kernel._next_handle,
        "events": events,
    }
    return state, skipped


def _restore_kernel(kernel, state, nodes_by_key):
    """Rebuild the heap; returns nothing but re-links timer handles and
    processor ``_step_pending`` flags as a side effect."""
    entries = []
    for record in state["events"]:
        descriptor = record["callback"]
        kind = descriptor["kind"]
        try:
            node = nodes_by_key[descriptor["node"]]
        except KeyError:
            raise CheckpointError(
                "heap entry references unknown node %r"
                % (descriptor["node"],)) from None
        if kind == "cpu_step":
            callback, args = node.processor._step, ()
            node.processor._step_pending = True
        elif kind == "timer_expire":
            index = descriptor["index"]
            if not 0 <= index < NUM_TIMERS:
                raise CheckpointError(
                    "timer_expire index %r out of range" % (index,))
            callback, args = node.processor.timer._expire, (index,)
            node.processor.timer._registers[index].handle = record["handle"]
        elif kind == "radio_tx_done":
            callback = node.radio._finish_word
            args = (descriptor["word"], descriptor["start"])
        elif kind == "sensor_fire":
            sensor = node.sensors.get(descriptor["sensor"]) or \
                node.sensors.get(int(descriptor["sensor"]))
            if sensor is None:
                raise CheckpointError(
                    "heap entry references unknown sensor %r on node %r"
                    % (descriptor["sensor"], descriptor["node"]))
            callback, args = sensor.fire, ()
        else:
            raise CheckpointError(
                "unknown heap callback kind %r" % (kind,))
        entries.append((record["time"], record["handle"], callback, args))
    kernel.restore_state(state["now"], state["next_handle"], entries)


# -- channel ------------------------------------------------------------------


def _channel_state(channel, radio_keys):
    def key_for(radio):
        try:
            return radio_keys[id(radio)]
        except KeyError:
            raise CheckpointCaptureError(
                "radio %r joined the channel outside the simulator's "
                "nodes; cannot checkpoint" % (radio.name,)) from None

    return {
        "comm_range": channel.comm_range,
        "bit_error_rate": channel.bit_error_rate,
        "corruption": channel.corruption,
        "rng": _rng_state(channel._rng),
        "active": [[key_for(radio), start, end]
                   for radio, (start, end) in channel._active.items()],
        "recent": [[key_for(radio), start, end]
                   for radio, start, end in channel._recent],
        "collisions": channel.collisions,
        "words_carried": channel.words_carried,
        "noise_corruptions": channel.noise_corruptions,
    }


def _restore_channel(channel, state, nodes_by_key):
    _restore_rng(channel._rng, state["rng"])
    channel._active = {nodes_by_key[key].radio: (start, end)
                       for key, start, end in state["active"]}
    channel._recent = [(nodes_by_key[key].radio, start, end)
                       for key, start, end in state["recent"]]
    channel.collisions = state["collisions"]
    channel.words_carried = state["words_carried"]
    channel.noise_corruptions = state["noise_corruptions"]


# -- the public API -----------------------------------------------------------


def capture(sim, unknown="error"):
    """Freeze *sim* -- a :class:`~repro.network.NetworkSimulator` or a
    standalone :class:`~repro.node.SensorNode` -- into a
    :class:`Checkpoint`.

    Capture never mutates simulation state (all reads go through
    counter-free inspection paths), so ``capture`` at time ``t`` is
    idempotent and a captured run continues bit-identically.

    *unknown* controls what happens when a kernel heap entry's callback
    is not one of the serializable simulation callbacks: ``"error"``
    (default) raises :class:`CheckpointCaptureError`; ``"skip"`` drops
    it and lists it under ``skipped_callbacks`` (the policy the blackbox
    uses, since its own periodic tick and failure-injection hooks sit on
    the same heap).  Host-side observability ticks (watchdog, timeline
    sampler) are always skipped and recorded.
    """
    from repro.network.simulator import NetworkSimulator
    from repro.node.node import SensorNode

    if unknown not in ("error", "skip"):
        raise ValueError("unknown must be 'error' or 'skip', not %r"
                         % (unknown,))
    if isinstance(sim, NetworkSimulator):
        nodes = [(str(node_id), node)
                 for node_id, node in sim.nodes.items()]
        expected = [node.radio for _, node in nodes]
        if sim.channel._radios != expected:
            raise CheckpointCaptureError(
                "channel radios do not match the simulator's nodes; "
                "cannot checkpoint")
        kernel_state, skipped = _kernel_state(sim.kernel, nodes, unknown)
        radio_keys = {id(node.radio): key for key, node in nodes}
        data = {
            "schema": SCHEMA,
            "kind": "network",
            "time_s": sim.kernel.now,
            "kernel": kernel_state,
            "channel": _channel_state(sim.channel, radio_keys),
            "nodes": [_node_state(node) for _, node in nodes],
            "skipped_callbacks": skipped,
        }
        return Checkpoint(data)
    if isinstance(sim, SensorNode):
        nodes = [(str(sim.node_id), sim)]
        kernel_state, skipped = _kernel_state(sim.kernel, nodes, unknown)
        data = {
            "schema": SCHEMA,
            "kind": "node",
            "time_s": sim.kernel.now,
            "kernel": kernel_state,
            "nodes": [_node_state(sim)],
            "skipped_callbacks": skipped,
        }
        return Checkpoint(data)
    raise CheckpointCaptureError(
        "capture() takes a NetworkSimulator or SensorNode, not %s"
        % type(sim).__name__)


def restore(checkpoint):
    """Rebuild a fresh simulator from *checkpoint*.

    Returns a :class:`~repro.network.NetworkSimulator` for ``network``
    checkpoints and a :class:`~repro.node.SensorNode` for ``node``
    checkpoints.  The restored simulation continues bit-identically to
    the captured one; observability (``obs`` contexts, trace functions,
    watchdogs) is not part of a checkpoint and must be re-attached by
    the caller before resuming if event streams are wanted.
    """
    from repro.network.simulator import NetworkSimulator
    from repro.node.node import SensorNode

    if isinstance(checkpoint, dict):
        checkpoint = Checkpoint(checkpoint)
    _require_schema(checkpoint.data)
    data = checkpoint.data

    if checkpoint.kind == "node":
        state = data["nodes"][0]
        node = SensorNode(
            node_id=state["id"], name=state["name"],
            config=_restore_config(state["config"]),
            radio_config=RadioConfig(**state["radio_config"]),
            position=tuple(state["position"]))
        _restore_node_state(node, state)
        _restore_kernel(node.kernel, data["kernel"],
                        {str(state["id"]): node})
        return node
    if checkpoint.kind != "network":
        raise CheckpointError("unknown checkpoint kind %r"
                              % (checkpoint.kind,))

    channel_state = data["channel"]
    net = NetworkSimulator(comm_range=channel_state["comm_range"],
                           bit_error_rate=channel_state["bit_error_rate"],
                           corruption=channel_state["corruption"])
    nodes_by_key = {}
    for state in data["nodes"]:
        # add_node() cannot carry a custom name, so nodes are rebuilt
        # the way it builds them: construct, join the channel (order
        # matters -- delivery fan-out follows join order), register.
        node = SensorNode(
            kernel=net.kernel, node_id=state["id"], name=state["name"],
            config=_restore_config(state["config"]),
            radio_config=RadioConfig(**state["radio_config"]),
            position=tuple(state["position"]))
        net.channel.join(node.radio)
        net.nodes[state["id"]] = node
        _restore_node_state(node, state)
        nodes_by_key[str(state["id"])] = node
    _restore_channel(net.channel, channel_state, nodes_by_key)
    _restore_kernel(net.kernel, data["kernel"], nodes_by_key)
    return net


def network_digest(sim):
    """Every meter accumulator of every node (plus channel and kernel
    counters) at full precision -- the equality the differential harness
    asserts between resumed and uninterrupted runs.

    Accepts a :class:`~repro.network.NetworkSimulator` or a single
    :class:`~repro.node.SensorNode`.
    """
    from repro.bench.simspeed import meter_digest
    from repro.network.simulator import NetworkSimulator

    if isinstance(sim, NetworkSimulator):
        digest = {
            "kind": "network",
            "now": sim.kernel.now,
            "pending": sim.kernel.pending,
            "channel": {
                "words_carried": sim.channel.words_carried,
                "collisions": sim.channel.collisions,
                "noise_corruptions": sim.channel.noise_corruptions,
            },
            "nodes": {},
        }
        for node_id, node in sorted(sim.nodes.items()):
            node_digest = meter_digest(node.processor)
            node_digest["radio"] = _radio_state(node.radio)
            digest["nodes"][str(node_id)] = node_digest
        return digest
    digest = meter_digest(sim.processor)
    digest["radio"] = _radio_state(sim.radio)
    return digest
