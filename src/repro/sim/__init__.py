"""Whole-simulation services: checkpoint/restore and deterministic
replay.

``repro.sim.checkpoint`` freezes a live simulation -- kernel clock and
heap, per-node processor/coprocessor/radio state, energy meters at full
float precision, channel physics including the noise RNG -- into a
versioned, JSON-serializable :class:`~repro.sim.checkpoint.Checkpoint`,
and restores it into a fresh simulator that continues bit-identically.
``repro.sim.differential`` is the proof harness: it checkpoints runs
mid-flight and asserts the resumed simulation is indistinguishable from
an uninterrupted one.
"""

from repro.sim.checkpoint import (
    SCHEMA,
    Checkpoint,
    CheckpointCaptureError,
    CheckpointError,
    CheckpointVersionError,
    capture,
    network_digest,
    restore,
)

__all__ = [
    "SCHEMA",
    "Checkpoint",
    "CheckpointCaptureError",
    "CheckpointError",
    "CheckpointVersionError",
    "capture",
    "network_digest",
    "restore",
]
