"""Differential proof harness for checkpoint/restore.

The determinism contract (DESIGN.md, "Checkpoint & deterministic
replay") is proven the same way PR 4 proved the fast path: run a
scenario to a mid-flight time ``t``, :func:`~repro.sim.checkpoint.capture`,
:func:`~repro.sim.checkpoint.restore` into a fresh simulator, run both
the resumed and an uninterrupted twin to the horizon ``T``, and assert
:func:`~repro.sim.checkpoint.network_digest` equality -- every meter
accumulator at full float precision, every radio/channel counter.

Each scenario here is a *builder*: it assembles the simulation and plays
any staged host-side prologue (boot runs, route seeding, packet
injection), then hands back a sim that evolves autonomously to the
horizon.  Checkpoint times are drawn from the autonomous tail, so the
interrupted and uninterrupted twins differ only in the capture/restore
round-trip under test.

The matrix deliberately covers the state the checkpoint schema is most
likely to get wrong:

* ``straightline`` -- a single busy core (burst engine mid-flight).
* ``blink`` -- fig. 5 timers: armed timer registers and their pending
  kernel expirations.
* ``sti`` -- timer-driven self-modifying code: predecoded-IMEM validity
  must survive the round trip.
* ``chain_biterr`` -- multi-hop DATA traffic over a noisy channel:
  in-flight radio words, TX queues, MAC retries, and the channel noise
  RNG mid-stream.
* ``aodv_noroute`` -- AODV route discovery that never resolves: RREQ
  flooding state in guest DMEM.
* ``convergecast`` -- periodic sensing with per-node temperature RNGs
  (the expensive case; marked slow in the tier-1 suite).

Run standalone (CI's ``checkpoint`` job)::

    python -m repro.sim.differential --scenarios straightline,blink \
        --json checkpoint-report.json
"""

import argparse
import json
import sys

from repro.asm import build
from repro.core import CoreConfig
from repro.isa.encoding import encode
from repro.isa.events import Event
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.netstack import build_blink_app, layout
from repro.netstack.drivers import build_aodv_node, build_tx_node
from repro.netstack.runtime import boot_source
from repro.netstack.sampling import (
    SAMP_NEXT_HOP,
    SAMP_SINK,
    build_sampling_node,
)
from repro.network.simulator import NetworkSimulator
from repro.node import SensorNode
from repro.sensors import TemperatureSensor
from repro.sim.checkpoint import Checkpoint, capture, network_digest, restore
from repro.tools.snap_net_trace import (
    UNROUTABLE_DEST,
    seed_chain_routes,
    stage_and_send,
)

#: Both execution engines; every scenario differential runs under each.
ENGINES = (True, False)


# -- scenario builders --------------------------------------------------------
#
# Each builder returns ``(sim, horizon)``: *sim* is a NetworkSimulator
# or SensorNode whose clock sits at the end of the staged prologue, and
# the simulation runs host-intervention-free from there to *horizon*.


_STRAIGHTLINE = """
boot:
    movi r1, 0
    movi r2, %(outer)d
outer:
    movi r3, 2000
inner:
    addi r1, 1
    subi r3, 1
    bnez r3, inner
    subi r2, 1
    bnez r2, outer
    halt
"""


def build_straightline(fast_path):
    """One busy core grinding a counted loop, no coprocessor traffic."""
    node = SensorNode(node_id=1, config=CoreConfig(fast_path=fast_path))
    node.load(build(_STRAIGHTLINE % {"outer": 12}))
    node.processor.start()
    return node, 0.025


def build_blink(fast_path):
    """Two fig. 5 blink nodes: armed timers and LED port history."""
    net = NetworkSimulator()
    program = build_blink_app(period_ticks=400)
    config = CoreConfig(fast_path=fast_path)
    net.add_node(1, program=program, config=config)
    net.add_node(2, program=program, config=config)
    net.start()
    return net, 1.0


#: Self-modifying workload: every timer tick the handler loads the next
#: replacement word from DMEM and rewrites its own patch site, toggling
#: it between ``mov r1, r0`` and ``add r2, r3`` -- predecode validity
#: churns for the whole run.
_STI_APP = r"""
    .equ STATE, 0x10
    .equ COUNT, 0x11
    .equ WORDS, 0x12

sti_init:
    st r0, STATE(r0)
    st r0, COUNT(r0)
    movi r1, %(word_mov)d
    st r1, WORDS(r0)
    movi r1, %(word_add)d
    st r1, 0x13(r0)
    movi r2, 5
    movi r3, 7
    ret

sti_arm:
    movi r1, 0
    movi r2, %(period)d
    schedlo r1, r2
    ret

sti_handler:
    jal sti_arm
    ld r4, STATE(r0)
    xori r4, 1
    st r4, STATE(r0)
    movi r6, WORDS
    add r6, r4
    ld r7, 0(r6)
    movi r5, patch
    sti r7, 0(r5)
patch:
    mov r1, r0
    ld r3, COUNT(r0)
    addi r3, 1
    st r3, COUNT(r0)
    done
"""


def build_sti(fast_path):
    """Timer-driven self-modifying code (predecode churn)."""
    word_mov = encode(Instruction(Opcode.MOV, rd=1, rs=0))[0]
    word_add = encode(Instruction(Opcode.ADD, rd=2, rs=3))[0]
    source = boot_source(handlers={Event.TIMER0: "sti_handler"},
                         init_calls=("sti_init",),
                         extra="    jal sti_arm")
    app = _STI_APP % {"word_mov": word_mov, "word_add": word_add,
                      "period": 500}
    node = SensorNode(node_id=1, config=CoreConfig(fast_path=fast_path))
    node.load(build(source + app))
    node.processor.start()
    return node, 0.05


def _build_chain(fast_path, bit_error_rate, no_route, packets):
    """The snap-net-trace chain: TX driver, AODV relays, one sink."""
    nodes = 3
    config = CoreConfig(fast_path=fast_path)
    net = NetworkSimulator(comm_range=1.5, bit_error_rate=bit_error_rate,
                           seed=7, corruption="flip")
    net.add_node(1, program=build_tx_node(1), position=(0.0, 0.0),
                 config=config)
    for node_id in range(2, nodes + 1):
        net.add_node(node_id, program=build_aodv_node(node_id),
                     position=(float(node_id - 1), 0.0), config=config)
    net.start()
    net.run(until=0.01)  # everyone boots and sleeps

    sink_id = nodes
    app_dest = UNROUTABLE_DEST if no_route else sink_id
    if not no_route:
        seed_chain_routes(net, first_relay=2, sink_id=sink_id)

    source = net.nodes[1]
    for sequence in range(packets):
        packet = layout.make_packet(
            dst=2, src=1, pkt_type=layout.PKT_TYPE_DATA, seq=sequence,
            payload=[app_dest, 0x100 + 0x40 * sequence,
                     0x120 + 0x55 * sequence])
        stage_and_send(source, packet)
        if sequence < packets - 1:
            net.run(until=net.kernel.now + 0.05)
    # The last packet's whole flight (CSMA backoff, per-hop relays, MAC
    # retries under noise) happens inside the differential window.  The
    # flight itself is over within ~8 ms; the tight horizon keeps
    # mid-tail checkpoint fractions landing with radio words genuinely
    # in the air rather than in the idle aftermath.
    return net, net.kernel.now + 0.02


def build_chain_biterr(fast_path):
    """Multi-hop DATA delivery over a noisy, bit-flipping channel."""
    return _build_chain(fast_path, bit_error_rate=0.02, no_route=False,
                        packets=3)


def build_aodv_noroute(fast_path):
    """AODV route discovery that can never resolve (RREQ flooding)."""
    return _build_chain(fast_path, bit_error_rate=0.0, no_route=True,
                        packets=2)


def build_convergecast(fast_path):
    """Periodic sensing chain with per-node temperature-sensor RNGs."""
    chain_length = 3
    period_ticks = 50_000  # 50 ms sampling period
    config = CoreConfig(fast_path=fast_path)
    net = NetworkSimulator(comm_range=1.5)
    net.add_node(1, program=build_aodv_node(1), position=(0.0, 0.0),
                 config=config)
    reporters = {}
    for index in range(1, chain_length):
        node_id = index + 1
        node = net.add_node(
            node_id, program=build_sampling_node(node_id, period_ticks),
            position=(float(index), 0.0), config=config)
        node.attach_sensor(TemperatureSensor(seed=node_id), sensor_id=1)
        reporters[node_id] = node
    net.start()
    net.run(until=0.001)
    for node_id, node in reporters.items():
        node.processor.dmem.poke(SAMP_NEXT_HOP, node_id - 1)
        node.processor.dmem.poke(SAMP_SINK, 1)
        node.processor.dmem.poke(layout.ROUTE_TABLE + 0, 1)
        node.processor.dmem.poke(layout.ROUTE_TABLE + 1, node_id - 1)
        node.processor.dmem.poke(layout.ROUTE_TABLE + 2, node_id - 1)
    count = len(reporters)
    for offset, node in enumerate(reporters.values()):
        stagger = int(period_ticks * (1 + offset) / (count + 1))
        node.processor.timer.schedlo(0, period_ticks + stagger)
    return net, net.kernel.now + 1.0


SCENARIOS = {
    "straightline": build_straightline,
    "blink": build_blink,
    "sti": build_sti,
    "chain_biterr": build_chain_biterr,
    "aodv_noroute": build_aodv_noroute,
    "convergecast": build_convergecast,
}

#: The cheapest scenarios, used by CI's differential smoke matrix.
CHEAP_SCENARIOS = ("straightline", "blink")


# -- the differential ---------------------------------------------------------


def _run(sim, until):
    if isinstance(sim, SensorNode):
        sim.kernel.run(until=until)
    else:
        sim.run(until=until)


def checkpoint_time(sim, horizon, fraction):
    """A mid-flight capture time: *fraction* of the autonomous tail."""
    start = sim.kernel.now
    return start + (horizon - start) * fraction


def differential(scenario, fast_path, fraction=0.5, via_json=True,
                 localize=False):
    """Run one (scenario, engine) differential; returns a report dict.

    Builds the scenario twice.  The *baseline* runs uninterrupted to the
    horizon.  The *subject* runs to ``t`` (a *fraction* of the autonomous
    tail), is captured, optionally round-tripped through JSON text
    (*via_json*, the default -- the persisted format is what must be
    deterministic), restored into a fresh simulator, and resumed to the
    horizon.  ``report["identical"]`` is the verdict;
    ``report["baseline"]``/``report["resumed"]`` hold the full digests.

    With *localize*, a failed differential additionally carries
    ``report["divergence"]``: the first divergent trace record between
    the baseline and resumed tails, pinned to node/handler/symbolicated
    PC by :mod:`repro.obs.diff` (see :func:`localize_divergence`).
    """
    builder = SCENARIOS[scenario]

    baseline_sim, horizon = builder(fast_path)
    _run(baseline_sim, horizon)
    baseline = network_digest(baseline_sim)

    subject, horizon_b = builder(fast_path)
    if horizon_b != horizon:
        raise AssertionError("non-deterministic scenario builder %r"
                             % scenario)
    t = checkpoint_time(subject, horizon, fraction)
    _run(subject, t)
    checkpoint = capture(subject)
    if via_json:
        checkpoint = Checkpoint.from_json(checkpoint.to_json())
    resumed_sim = restore(checkpoint)
    _run(resumed_sim, horizon)
    resumed = network_digest(resumed_sim)

    report = {
        "scenario": scenario,
        "fast_path": fast_path,
        "t": t,
        "horizon": horizon,
        "identical": resumed == baseline,
        "baseline": baseline,
        "resumed": resumed,
    }
    if localize and not report["identical"]:
        report["divergence"] = localize_divergence(
            scenario, fast_path, t, via_json=via_json)
    return report


def localize_divergence(scenario, fast_path, t, via_json=True,
                        max_probes=12, tail=16):
    """Pin a failed differential's divergence to its first trace record.

    Rebuilds both sides of the differential at time *t* -- an
    uninterrupted twin and a capture/restore round trip -- and hands
    them to :class:`repro.obs.diff.Bisector`: bisect the digests over
    the tail, re-run the bisected window under the trace bus, and
    localize the first mismatching record (node, handler, symbolicated
    PC, flight-recorder tails).  Returns the divergence as a dict (with
    a rendered ``text``), or ``None`` when the tails never diverge.

    The restore here goes through this module's ``restore`` binding so
    fault-injection harnesses can intercept exactly the path under test.
    """
    from repro.obs.diff import Bisector

    builder = SCENARIOS[scenario]

    def make_baseline():
        sim, horizon = builder(fast_path)
        _run(sim, t)
        return sim, horizon

    def make_resumed():
        sim, horizon = builder(fast_path)
        _run(sim, t)
        ckpt = capture(sim)
        if via_json:
            ckpt = Checkpoint.from_json(ckpt.to_json())
        return restore(ckpt), horizon

    bisector = Bisector(make_baseline, make_resumed, max_probes=max_probes)
    divergence, _, _ = bisector.localize(
        tail=tail, label_a="baseline", label_b="resumed")
    if divergence is None:
        return None
    result = divergence.to_dict()
    result["text"] = divergence.describe()
    return result


def digest_diff(baseline, resumed, prefix=""):
    """Human-readable paths where two digests differ (for reports).

    Alias of :func:`repro.obs.diff.deep_diff_paths`, kept under the
    name this harness has always exported.
    """
    from repro.obs.diff import deep_diff_paths

    return deep_diff_paths(baseline, resumed, prefix)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.differential",
        description="checkpoint/restore differential matrix")
    parser.add_argument("--scenarios",
                        default=",".join(CHEAP_SCENARIOS),
                        help="comma-separated scenario names (or 'all')")
    parser.add_argument("--fractions", default="0.25,0.75",
                        help="checkpoint points as fractions of the tail")
    parser.add_argument("--json", help="write the full report here")
    parser.add_argument("--no-localize", dest="localize",
                        action="store_false", default=True,
                        help="on divergence, skip snap-diff localization "
                             "and print only digest paths")
    args = parser.parse_args(argv)

    names = list(SCENARIOS) if args.scenarios == "all" \
        else args.scenarios.split(",")
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        parser.error("unknown scenarios: %s (have: %s)"
                     % (", ".join(unknown), ", ".join(SCENARIOS)))
    fractions = [float(field) for field in args.fractions.split(",")]

    reports, failed = [], 0
    for name in names:
        for fast_path in ENGINES:
            for fraction in fractions:
                report = differential(name, fast_path, fraction=fraction,
                                      localize=args.localize)
                reports.append(report)
                verdict = "ok" if report["identical"] else "DIVERGED"
                print("%-14s fast_path=%-5s t=%.6fs  %s"
                      % (name, fast_path, report["t"], verdict))
                if not report["identical"]:
                    failed += 1
                    for line in digest_diff(report["baseline"],
                                            report["resumed"])[:20]:
                        print("    " + line)
                    divergence = report.get("divergence")
                    if divergence is not None:
                        for line in divergence["text"].splitlines():
                            print("    " + line)

    if args.json:
        with open(args.json, "w") as handle:
            json.dump({"reports": reports, "failed": failed}, handle,
                      indent=2, sort_keys=True)
        print("report: %s" % args.json)

    print("%d/%d differentials identical"
          % (len(reports) - failed, len(reports)))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
