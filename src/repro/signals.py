"""Dependency-free control-flow signals shared across packages."""


class WouldBlock(Exception):
    """Internal signal: an r15 read found the FIFO empty (the core stalls).

    Control flow inside the processor step, never an error surfaced to
    users.  Lives in its own module so the core and coprocessor packages
    can both raise/catch it without importing each other.
    """
