"""Live streaming telemetry: the ``repro.obs.telemetry/1`` delta feed.

Everything the obs stack built so far -- trace bus, metrics registry,
timeline sampler, journey tracker, watchdog, flight recorder -- is
pull-at-end: you learn what happened when the run finishes.  The
:class:`TelemetryExporter` turns that stack into a *push* pipeline: a
periodic kernel callback batches what changed since the last flush into
small typed NDJSON records and hands them to a non-blocking transport
(:mod:`repro.obs.transports`) -- a file, stdout, or a localhost socket
that any number of ``snap-top`` dashboards can attach to mid-run.

Records (one JSON object per line; every record carries ``type``,
``seq``, and ``sim_s``):

``hello``
    Stream preamble: the schema string, the node names covered, and the
    flush cadence.  Re-sent (followed by a *full* ``metrics`` record)
    whenever a new socket consumer attaches, so delta decoding always
    starts from a known base.
``progress``
    Heartbeat: simulated/wall time, cumulative kernel events and
    instructions with their per-second rates over the last window, the
    run horizon with an ETA, and the stream's own delivery counters
    (records sent, transport drops, buffer drops, attached clients).
``metrics``
    The :meth:`~repro.obs.metrics.MetricsRegistry.diff` since the last
    flush (or the full snapshot when ``full`` is true).
``timeline``
    The :class:`~repro.obs.timeline.TimelineSampler` rows taken at this
    flush -- per-node cumulative energy, duty cycle, queue depth.
``journeys``
    Newly delivered packet journeys (summaries) plus live aggregate
    delivery/drop statistics.
``handlers``
    The hottest handlers by energy spent *in this window*.
``watchdog``
    Invariant checks run since the last flush.
``energy``
    Per-protocol-layer energy provenance from an armed
    :class:`~repro.obs.energy.EnergyLedger`: cumulative and
    this-window joules per layer, the hottest symbolicated source
    lines, and the ledger's reconciliation residual against the
    meters.  Only present when the observability context was built
    with ``energy=True``.
``events``
    Buffered drop-class trace-bus events (event-queue drops, radio
    drops) from this window, with an overflow count when the bounded
    buffer had to discard some.
``bye``
    End of stream: final counters.

The exporter is a pure observer: every read goes through the same
counter-free paths the timeline sampler and watchdog use, so an
exporter-armed run is bit-identical to a bare one (enforced by
``tests/test_telemetry.py`` on the fig5-blink and convergecast meter
digests).  It never blocks the kernel: transports drop-and-count under
backpressure, and the in-exporter event buffer is bounded the same way.

Versioning rules (``repro.obs.telemetry/1``):

* consumers MUST ignore record types they do not know;
* consumers MUST ignore unknown fields on known record types;
* additive changes (new record types, new fields) keep the schema
  string; anything that changes the meaning of an existing field bumps
  it to ``/2``.
"""

import json
import time
from collections import deque

from repro.obs.bus import KindFilter
from repro.obs.timeline import TimelineSampler
from repro.obs.transports import FileTransport, TelemetryTransport

#: The wire schema identifier carried in every ``hello`` record.
SCHEMA = "repro.obs.telemetry/1"

#: Default flush cadence in simulated seconds.
DEFAULT_INTERVAL = 0.05

#: Bounded buffer of drop-class bus events between flushes; overflow is
#: counted, never blocking.
EVENT_BUFFER_LIMIT = 256

#: Bus event kinds buffered into ``events`` records.
EVENT_KINDS = ("drop", "radio_drop")


class TelemetryExporter:
    """Batches obs-stack deltas into the NDJSON telemetry stream.

    *nodes* is any mapping whose values are
    :class:`~repro.node.node.SensorNode` instances (the mapping keys are
    ignored; records use each node's ``name``).  *transport* is a
    :class:`~repro.obs.transports.TelemetryTransport` (or a path string,
    shorthand for a :class:`FileTransport`).  *interval* is the flush
    cadence in simulated seconds.  *clock* is the wall-time source --
    injectable so the golden-stream test can pin it.

    Use :meth:`for_network` / :meth:`for_node` rather than the raw
    constructor; they wire the observability context for you.
    """

    def __init__(self, kernel, nodes, obs, transport,
                 interval=DEFAULT_INTERVAL, watchdog=None, top_handlers=5,
                 tail_limit=64, clock=None, on_progress=None):
        if interval <= 0:
            raise ValueError("telemetry interval must be positive")
        if isinstance(transport, str):
            transport = FileTransport(transport)
        if not isinstance(transport, TelemetryTransport):
            raise TypeError("transport must be a TelemetryTransport "
                            "(or a path string), not %r" % (transport,))
        self.kernel = kernel
        self.nodes = {node.name: node for node in nodes.values()}
        self.obs = obs
        self.transport = transport
        self.interval = interval
        self.watchdog = watchdog
        self.top_handlers = top_handlers
        self.clock = clock if clock is not None else time.perf_counter
        self.on_progress = on_progress
        #: Recent records (dicts, newest last) for crash-bundle tails.
        self.tail = deque(maxlen=tail_limit)
        #: Records discarded by the bounded in-exporter event buffer.
        self.buffer_dropped = 0
        self.seq = 0
        self.flushes = 0
        self.closed = False
        self._started = False
        self._handle = None
        self._horizon = None
        self._wall0 = None
        self._last_wall = None
        self._last_events = 0
        self._last_instructions = 0
        self._last_metrics = None
        self._last_handlers = {}
        self._last_layers = {}
        self._last_watchdog_checks = 0
        self._last_journey_stats = None
        self._emitted_journeys = set()
        self._event_buffer = []
        self._event_overflow = 0
        self._sampler = TimelineSampler(kernel, self.nodes, interval,
                                        obs=obs, retain=False)
        self._sink = KindFilter(EVENT_KINDS, self._buffer_event)
        if obs is not None:
            obs.bus.attach(self._sink)
            #: Let the blackbox find the stream tail for crash bundles.
            obs.telemetry = self

    # -- construction helpers --------------------------------------------------

    @classmethod
    def for_network(cls, net, transport, interval=DEFAULT_INTERVAL,
                    obs=None, journeys=True, **kwargs):
        """An exporter over every node of a
        :class:`~repro.network.simulator.NetworkSimulator`.

        Reuses the simulator's attached observability context when it
        has one (so one context feeds profiler, blackbox, and telemetry
        alike); otherwise creates and attaches a fresh
        ``Observability(journeys=journeys)``.
        """
        from repro.obs.context import Observability

        if obs is None:
            obs = net.obs
        if obs is None:
            obs = Observability(journeys=journeys)
        if net.obs is not obs:
            net.attach_observability(obs)
        return cls(net.kernel, net.nodes, obs, transport,
                   interval=interval, **kwargs)

    @classmethod
    def for_node(cls, node, transport, interval=DEFAULT_INTERVAL,
                 obs=None, **kwargs):
        """An exporter over a single :class:`SensorNode`."""
        from repro.obs.context import Observability

        if obs is None:
            obs = Observability()
            node.attach_observability(obs)
        return cls(node.kernel, {node.name: node}, obs, transport,
                   interval=interval, **kwargs)

    # -- lifecycle -------------------------------------------------------------

    def start(self, horizon=None):
        """Emit the stream preamble and arm the periodic flush.

        *horizon* (simulated seconds) feeds the progress ETA when known
        up front; while the kernel is inside a bounded ``run(until=)``
        its own horizon takes precedence.
        """
        if self._started:
            return self
        self._started = True
        self._horizon = horizon
        self._wall0 = self._last_wall = self.clock()
        self._emit(self._hello_record())
        self._emit({"type": "metrics", "full": True,
                    "values": self._metric_values(full=True)})
        self.transport.flush()
        self._handle = self.kernel.schedule(self.interval, self._tick)
        return self

    def _tick(self):
        self._handle = None
        self.flush()
        # Watchdog discipline: re-arm only while other activity is
        # pending, so the exporter never keeps a drained simulation
        # alive or masks a deadlock.
        if self.kernel.pending > 0:
            self._handle = self.kernel.schedule(self.interval, self._tick)

    def close(self):
        """Final flush, remaining journey summaries, and ``bye``."""
        if self.closed or not self._started:
            self.closed = True
            return
        self.flush()
        tracker = self.obs.journeys if self.obs is not None else None
        if tracker is not None:
            leftovers = [journey.summary() for journey in tracker.journeys
                         if journey.id not in self._emitted_journeys]
            if leftovers:
                for journey in leftovers:
                    self._emitted_journeys.add(journey["journey"])
                self._emit({"type": "journeys", "final": True,
                            "completed": leftovers,
                            "stats": self._journey_stats(tracker)})
        self._emit({"type": "bye",
                    "wall_s": self._wall(),
                    "flushes": self.flushes,
                    "records_sent": self.transport.sent,
                    "transport_dropped": self.transport.dropped,
                    "buffer_dropped": self.buffer_dropped})
        if self._handle is not None:
            self.kernel.cancel(self._handle)
            self._handle = None
        if self.obs is not None:
            try:
                self.obs.bus.detach(self._sink)
            except ValueError:
                pass
        self.transport.close()
        self.closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- flushing --------------------------------------------------------------

    def flush(self, full=False):
        """Emit one delta batch right now (normally driven by the
        periodic kernel callback)."""
        if self.closed:
            return
        if self.transport.poll():
            # A new consumer attached: restate the preamble and force a
            # full metrics snapshot so its delta decoding has a base.
            full = True
            self._emit(self._hello_record())
        self.flushes += 1
        rows = self._sampler.sample()
        if rows:
            self._emit({"type": "timeline", "rows": rows})
        values = self._metric_values(full=full)
        if values or full:
            self._emit({"type": "metrics", "full": full, "values": values})
        self._flush_journeys()
        self._flush_handlers()
        self._flush_energy()
        self._flush_watchdog()
        self._flush_events()
        progress = self._progress_record()
        self._emit(progress)
        if self.on_progress is not None:
            self.on_progress(progress)
        self.transport.flush()

    def _emit(self, record):
        record.setdefault("sim_s", self.kernel.now)
        record["seq"] = self.seq
        self.seq += 1
        self.tail.append(record)
        self.transport.send(json.dumps(record, separators=(",", ":"),
                                       default=str))

    def _hello_record(self):
        return {"type": "hello", "schema": SCHEMA,
                "nodes": sorted(self.nodes),
                "interval_s": self.interval}

    # -- record builders -------------------------------------------------------

    def _wall(self):
        return self.clock() - self._wall0 if self._wall0 is not None else 0.0

    def _metric_values(self, full=False):
        if self.obs is None:
            return {}
        registry = self.obs.metrics
        if full:
            values = registry.snapshot()
        else:
            values = registry.diff(self._last_metrics)
        self._last_metrics = registry.snapshot()
        return values

    def _progress_record(self):
        now = self.kernel.now
        wall = self._wall()
        wall_delta = wall - (self._last_wall - self._wall0) \
            if self._wall0 is not None else 0.0
        events = self.kernel.executed
        instructions = sum(node.meter.instructions
                           for node in self.nodes.values())
        events_s = instructions_s = 0.0
        if wall_delta > 0:
            events_s = (events - self._last_events) / wall_delta
            instructions_s = ((instructions - self._last_instructions)
                              / wall_delta)
        horizon = self.kernel.horizon
        if horizon is None:
            horizon = self._horizon
        eta = done = None
        if horizon is not None and horizon > 0:
            done = min(now / horizon, 1.0)
            remaining = max(horizon - now, 0.0)
            # ETA from the sim-time rate of the last window.
            sim_delta = now - getattr(self, "_last_sim", 0.0)
            if wall_delta > 0 and sim_delta > 0:
                eta = remaining * wall_delta / sim_delta
            elif remaining == 0.0:
                eta = 0.0
        self._last_wall = self._wall0 + wall if self._wall0 is not None \
            else None
        self._last_events = events
        self._last_instructions = instructions
        self._last_sim = now
        record = {
            "type": "progress",
            "sim_s": now,
            "wall_s": wall,
            "events": events,
            "events_s": events_s,
            "instructions": instructions,
            "instructions_s": instructions_s,
            "horizon_s": horizon,
            "eta_s": eta,
            "done": done,
            "records_sent": self.transport.sent,
            "transport_dropped": self.transport.dropped,
            "buffer_dropped": self.buffer_dropped,
            "clients": getattr(self.transport, "clients", None),
        }
        return record

    def _journey_stats(self, tracker):
        delivered = dropped = in_flight = 0
        reasons = {}
        latencies = []
        for journey in tracker.journeys:
            if journey.delivered:
                delivered += 1
                if journey.latency is not None:
                    latencies.append(journey.latency)
            elif journey.drop_reasons:
                dropped += 1
            else:
                in_flight += 1
            for reason in journey.drop_reasons:
                reasons[reason] = reasons.get(reason, 0) + 1
        stats = {"total": len(tracker.journeys), "delivered": delivered,
                 "dropped": dropped, "in_flight": in_flight,
                 "reasons": reasons}
        if latencies:
            ordered = sorted(latencies)
            stats["latency_p50_s"] = ordered[len(ordered) // 2]
            stats["latency_max_s"] = ordered[-1]
        return stats

    def _flush_journeys(self):
        tracker = self.obs.journeys if self.obs is not None else None
        if tracker is None:
            return
        completed = []
        for journey in tracker.journeys:
            if journey.delivered and journey.id not in self._emitted_journeys:
                self._emitted_journeys.add(journey.id)
                completed.append(journey.summary())
        stats = self._journey_stats(tracker)
        if not completed and stats == self._last_journey_stats:
            return
        self._last_journey_stats = stats
        self._emit({"type": "journeys", "completed": completed,
                    "stats": stats})

    def _flush_handlers(self):
        deltas = []
        for name, node in self.nodes.items():
            meter = node.processor.meter
            for tag, stats in meter.by_handler.items():
                key = (name, tag)
                last = self._last_handlers.get(key, (0, 0.0, 0))
                delta = (stats.instructions - last[0],
                         stats.energy - last[1],
                         stats.invocations - last[2])
                self._last_handlers[key] = (stats.instructions, stats.energy,
                                            stats.invocations)
                if delta[0] > 0 or delta[1] > 0:
                    deltas.append({"node": name, "handler": tag,
                                   "instructions": delta[0],
                                   "energy_j": delta[1],
                                   "invocations": delta[2]})
        if not deltas:
            return
        deltas.sort(key=lambda entry: (-entry["energy_j"], entry["node"],
                                       entry["handler"]))
        self._emit({"type": "handlers", "top": deltas[:self.top_handlers]})

    def _flush_energy(self):
        ledger = getattr(self.obs, "energy", None) if self.obs is not None \
            else None
        if ledger is None:
            return
        view = ledger.line_view()
        layers = {}
        for frame in view["frames"]:
            layers[frame["layer"]] = layers.get(frame["layer"], 0.0) \
                + frame["energy_j"]
        deltas = {}
        for layer, total in layers.items():
            delta = total - self._last_layers.get(layer, 0.0)
            if delta != 0.0:
                deltas[layer] = delta
        if not deltas and self._last_layers:
            return
        self._last_layers = layers
        top_lines = [{"node": frame["node"], "layer": frame["layer"],
                      "name": ledger._frame_name(frame),
                      "energy_j": frame["energy_j"]}
                     for frame in view["frames"][:3]]
        self._emit({"type": "energy", "layers": layers, "deltas": deltas,
                    "total_j": view["total_j"],
                    "residual_j": view["residual_j"],
                    "residual_frac": view["residual_frac"],
                    "top_lines": top_lines})

    def _flush_watchdog(self):
        if self.watchdog is None:
            return
        checks = self.watchdog.checks_run
        delta = checks - self._last_watchdog_checks
        if delta == 0 and checks == 0:
            return
        self._last_watchdog_checks = checks
        self._emit({"type": "watchdog", "checks": delta,
                    "checks_total": checks, "armed": self.watchdog.armed,
                    "ok": True})

    def _buffer_event(self, event):
        if len(self._event_buffer) >= EVENT_BUFFER_LIMIT:
            self._event_overflow += 1
            self.buffer_dropped += 1
            return
        self._event_buffer.append(event.to_record())

    def _flush_events(self):
        if not self._event_buffer and not self._event_overflow:
            return
        record = {"type": "events", "events": self._event_buffer}
        if self._event_overflow:
            record["overflow"] = self._event_overflow
        self._event_buffer = []
        self._event_overflow = 0
        self._emit(record)

    # -- crash-bundle support --------------------------------------------------

    def tail_snapshot(self):
        """The recent record tail plus stream counters, embedded in
        crash bundles by the :class:`~repro.obs.blackbox.Blackbox`."""
        return {"schema": SCHEMA,
                "records": list(self.tail),
                "records_sent": self.transport.sent,
                "transport_dropped": self.transport.dropped,
                "buffer_dropped": self.buffer_dropped}


# -- the consumer-side model ---------------------------------------------------

def _metric_num(value, default=0):
    return value if isinstance(value, (int, float)) else default


class TelemetryView:
    """Replays a ``repro.obs.telemetry/1`` stream into current state.

    Everything ``snap-top`` shows comes from this model, and the model
    is fed *only* by stream records -- no simulator access -- so the
    same dashboard renders a live socket, a recorded NDJSON file, or a
    pipe identically.  Unknown record types and fields are ignored, per
    the schema's versioning rules; malformed lines are counted, and seq
    gaps (records the transport had to drop) are surfaced as ``lost``.
    """

    def __init__(self):
        self.schema = None
        self.node_names = []
        self.interval_s = None
        self.nodes = {}            # node name -> latest timeline row
        self.power = {}            # node name -> watts over last window
        self.metrics = {}
        self.progress = None
        self.watchdog = None
        self.handlers = []
        self.energy = None
        self.journey_stats = None
        self.recent_journeys = deque(maxlen=6)
        self.recent_events = deque(maxlen=6)
        self.event_overflow = 0
        self.bye = None
        self.records = 0
        self.malformed = 0
        self.lost = 0
        self._last_seq = None
        self._prev_rows = {}

    @property
    def ready(self):
        """True once at least one full batch (ending in a progress
        heartbeat) has been applied."""
        return self.progress is not None

    # -- feeding ---------------------------------------------------------------

    def apply_line(self, line):
        """Apply one NDJSON line; returns the parsed record or ``None``
        for blank/malformed input."""
        line = line.strip()
        if not line:
            return None
        try:
            record = json.loads(line)
        except ValueError:
            self.malformed += 1
            return None
        if not isinstance(record, dict):
            self.malformed += 1
            return None
        self.apply(record)
        return record

    def apply(self, record):
        self.records += 1
        seq = record.get("seq")
        if isinstance(seq, int):
            if self._last_seq is not None and seq > self._last_seq + 1:
                self.lost += seq - self._last_seq - 1
            if self._last_seq is None or seq > self._last_seq:
                self._last_seq = seq
        handler = getattr(self, "_apply_" + str(record.get("type")), None)
        if handler is not None:
            handler(record)

    def _apply_hello(self, record):
        self.schema = record.get("schema")
        self.node_names = list(record.get("nodes") or ())
        self.interval_s = record.get("interval_s")

    def _apply_metrics(self, record):
        values = record.get("values") or {}
        if record.get("full"):
            self.metrics = dict(values)
        else:
            self.metrics.update(values)

    def _apply_timeline(self, record):
        for row in record.get("rows") or ():
            node = row.get("node")
            if node is None:
                continue
            prev = self.nodes.get(node)
            if prev is not None:
                dt = row.get("time_s", 0) - prev.get("time_s", 0)
                if dt > 0:
                    self.power[node] = ((row.get("energy_j", 0.0)
                                         - prev.get("energy_j", 0.0)) / dt)
            self.nodes[node] = row

    def _apply_journeys(self, record):
        stats = record.get("stats")
        if stats is not None:
            self.journey_stats = stats
        for summary in record.get("completed") or ():
            self.recent_journeys.append(summary)

    def _apply_handlers(self, record):
        self.handlers = list(record.get("top") or ())

    def _apply_energy(self, record):
        self.energy = record

    def _apply_watchdog(self, record):
        self.watchdog = record

    def _apply_progress(self, record):
        self.progress = record

    def _apply_events(self, record):
        for event in record.get("events") or ():
            self.recent_events.append(event)
        self.event_overflow += record.get("overflow") or 0

    def _apply_bye(self, record):
        self.bye = record

    # -- rendering -------------------------------------------------------------

    def render(self, width=100):
        """The dashboard frame as plain text (no cursor control)."""
        lines = [self._header_line(), self._stream_line()]
        watchdog = self._watchdog_line()
        if watchdog:
            lines.append(watchdog)
        lines.append("")
        lines.extend(self._node_table())
        packets = self._packet_lines()
        if packets:
            lines.append("")
            lines.extend(packets)
        handlers = self._handler_lines()
        if handlers:
            lines.append("")
            lines.extend(handlers)
        energy = self._energy_lines()
        if energy:
            lines.append("")
            lines.extend(energy)
        events = self._event_lines()
        if events:
            lines.append("")
            lines.extend(events)
        if self.bye is not None:
            lines.append("")
            lines.append("stream ended: %d records, %d dropped"
                         % (self.bye.get("records_sent", 0),
                            (self.bye.get("transport_dropped", 0)
                             + self.bye.get("buffer_dropped", 0))))
        return "\n".join(line[:width] for line in lines)

    def _header_line(self):
        progress = self.progress or {}
        sim = progress.get("sim_s")
        parts = ["snap-top", self.schema or "(no stream)"]
        if sim is not None:
            horizon = progress.get("horizon_s")
            if horizon:
                done = progress.get("done")
                parts.append("sim %.3fs/%.3fs%s"
                             % (sim, horizon,
                                " (%d%%)" % round(done * 100)
                                if done is not None else ""))
            else:
                parts.append("sim %.3fs" % sim)
            wall = progress.get("wall_s")
            if wall is not None:
                parts.append("wall %.1fs" % wall)
            eta = progress.get("eta_s")
            if eta is not None:
                parts.append("eta %.1fs" % eta)
        return " · ".join(parts)

    def _stream_line(self):
        progress = self.progress or {}
        parts = []
        if progress:
            parts.append("%s events/s" % _si(progress.get("events_s") or 0))
            parts.append("%s ins/s"
                         % _si(progress.get("instructions_s") or 0))
        dropped = ((progress.get("transport_dropped") or 0)
                   + (progress.get("buffer_dropped") or 0))
        parts.append("stream: %d recs" % self.records)
        parts.append("%d dropped" % dropped)
        parts.append("%d lost" % self.lost)
        if self.malformed:
            parts.append("%d malformed" % self.malformed)
        clients = progress.get("clients")
        if clients is not None:
            parts.append("%d client%s" % (clients,
                                          "" if clients == 1 else "s"))
        return " · ".join(parts)

    def _watchdog_line(self):
        if self.watchdog is None:
            return None
        status = "OK" if self.watchdog.get("ok") else "VIOLATED"
        return "watchdog: %s · %d checks%s" % (
            status, self.watchdog.get("checks_total", 0),
            "" if self.watchdog.get("armed") else " (disarmed)")

    def _node_table(self):
        header = ("node", "energy", "power", "duty tx", "duty rx",
                  "queue", "mode", "instructions", "tx", "rx", "drop")
        rows = [header]
        for node in sorted(self.nodes):
            row = self.nodes[node]
            rows.append((
                str(node),
                _si(row.get("energy_j", 0.0)) + "J",
                _si(self.power.get(node, 0.0)) + "W",
                "%.1f%%" % (100.0 * row.get("duty_tx", 0.0)),
                "%.1f%%" % (100.0 * row.get("duty_rx", 0.0)),
                str(row.get("queue_depth", 0)),
                str(row.get("radio_mode", "?")),
                str(row.get("instructions", 0)),
                str(_metric_num(self.metrics.get(
                    "%s.radio.tx_words" % node, 0))),
                str(_metric_num(self.metrics.get(
                    "%s.radio.rx_words" % node, 0))),
                str(_metric_num(self.metrics.get(
                    "%s.radio.dropped_words" % node, 0))),
            ))
        if len(rows) == 1:
            return ["(no timeline samples yet)"]
        widths = [max(len(row[i]) for row in rows)
                  for i in range(len(header))]
        return ["  ".join(cell.ljust(width)
                          for cell, width in zip(row, widths)).rstrip()
                for row in rows]

    def _packet_lines(self):
        stats = self.journey_stats
        if stats is None:
            return []
        reasons = stats.get("reasons") or {}
        reason_text = " (%s)" % ", ".join(
            "%s:%d" % (reason, count)
            for reason, count in sorted(reasons.items())) if reasons else ""
        line = ("packets: %d journeys · %d delivered · %d dropped%s · "
                "%d in flight"
                % (stats.get("total", 0), stats.get("delivered", 0),
                   stats.get("dropped", 0), reason_text,
                   stats.get("in_flight", 0)))
        p50 = stats.get("latency_p50_s")
        if p50 is not None:
            line += " · p50 %.1fms" % (p50 * 1e3)
        lines = [line]
        for summary in list(self.recent_journeys)[-3:]:
            lines.append("  #%s %s %s→%s %s %s hops %sJ" % (
                summary.get("journey"), summary.get("kind"),
                summary.get("origin"), summary.get("destination"),
                "delivered" if summary.get("delivered")
                else ("dropped" if summary.get("drop_reasons")
                      else "in flight"),
                summary.get("hops"), _si(summary.get("energy_j") or 0.0)))
        return lines

    def _handler_lines(self):
        if not self.handlers:
            return []
        lines = ["hottest handlers (energy this window):"]
        for entry in self.handlers:
            lines.append("  %-12s %-14s %6sJ  %6d ins  %d calls" % (
                entry.get("node"), entry.get("handler"),
                _si(entry.get("energy_j") or 0.0),
                entry.get("instructions", 0),
                entry.get("invocations", 0)))
        return lines

    def _energy_lines(self):
        record = self.energy
        if record is None:
            return []
        layers = record.get("layers") or {}
        deltas = record.get("deltas") or {}
        parts = []
        for layer, total in sorted(layers.items(), key=lambda kv: -kv[1]):
            if total <= 0:
                continue
            delta = deltas.get(layer)
            text = "%s %sJ" % (layer, _si(total))
            if delta:
                text += " (+%sJ)" % _si(delta)
            parts.append(text)
        lines = ["energy by layer: " + (" · ".join(parts) or "(none)")]
        residual = record.get("residual_frac")
        if residual is not None:
            lines[0] += " · residual %.3g%%" % (residual * 100.0)
        for entry in record.get("top_lines") or ():
            lines.append("  %-10s %-12s %-32s %6sJ" % (
                entry.get("node"), entry.get("layer"),
                entry.get("name"), _si(entry.get("energy_j") or 0.0)))
        return lines

    def _event_lines(self):
        if not self.recent_events and not self.event_overflow:
            return []
        lines = ["recent drops:"]
        for event in list(self.recent_events)[-4:]:
            lines.append("  %.6fs %s %s %s" % (
                event.get("time", 0.0), event.get("node", "?"),
                event.get("type", "?"), event.get("reason",
                                                  event.get("event", ""))))
        if self.event_overflow:
            lines.append("  (+%d buffered drop events discarded)"
                         % self.event_overflow)
        return lines


def _si(value):
    """Engineering-notation formatting: 1234.5 -> '1.23k'."""
    if value is None:
        return "?"
    magnitude = abs(value)
    for threshold, divisor, suffix in (
            (1e9, 1e9, "G"), (1e6, 1e6, "M"), (1e3, 1e3, "k")):
        if magnitude >= threshold:
            return "%.2f%s" % (value / divisor, suffix)
    if magnitude >= 1 or magnitude == 0:
        return "%.2f " % value
    for threshold, divisor, suffix in (
            (1e-3, 1e-3, "m"), (1e-6, 1e-6, "u"), (1e-9, 1e-9, "n")):
        if magnitude >= threshold:
            return "%.2f%s" % (value / divisor, suffix)
    return "%.2fp" % (value / 1e-12)


def read_stream(path):
    """Load a recorded NDJSON telemetry stream into (view, records)."""
    view = TelemetryView()
    records = []
    with open(path) as handle:
        for line in handle:
            record = view.apply_line(line)
            if record is not None:
                records.append(record)
    return view, records
