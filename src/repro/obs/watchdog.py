"""Runtime invariant watchdog.

A :class:`Watchdog` re-checks cross-cutting simulator invariants at a
configurable cadence while the simulation runs, instead of only at
end-of-run assertions in tests.  Each check is read-only (counter-free
``peek`` accesses, no meter writes, no event tokens), so an armed
watchdog leaves simulation results bit-identical -- its periodic kernel
callback merely interleaves with the existing timeline.

Invariant catalogue (see ``docs/OBSERVABILITY.md`` for per-check cost):

``energy_conservation``
    ``EnergyMeter.total_energy`` equals the sum of its component
    breakdowns (core buckets + memories + wakeup + event-token + idle)
    to within float tolerance -- the fast-path burst accumulators and
    the reference path must not diverge.
``meter_consistency``
    Instruction counts reconcile across the per-class and per-handler
    tables, and cycles never undercount instructions.
``clock_monotonic``
    Kernel time is finite, non-negative, and never moves backwards
    between checks.
``heap_liveness``
    The kernel's ``_live`` index and its heap agree: every indexed
    handle points at a live entry, and every live heap callback is
    indexed (a "leaked cancel" -- an entry nulled without dropping its
    index, or vice versa -- is exactly what this catches).
``queue_bounds``
    The hardware event queue and both r15 FIFOs respect their
    configured capacities.
``mac_legality``
    The MAC's DMEM state cells are legal: receive index/expectation
    within the 32-word frame buffer, ``RX_READY`` a flag, packet
    counters monotonic modulo 2^16.
``aodv_legality``
    Routing-layer counters monotonic; the RREQ duplicate-suppression
    ring index within the table.
``energy_budget``
    Each node with a configured joule budget (``budgets={name: J}``)
    stays under it -- CPU meter plus radio.  Unconfigured nodes are
    exempt, so the check is a no-op unless budgets are set.

A failed check raises :class:`InvariantViolation` carrying the invariant
name, the offending component, and -- when a flight recorder is attached
-- a snapshot of its rings, so the crash bundle can show what the node
was doing when the invariant broke.
"""

import math

from repro.core.exceptions import SimulationError
from repro.netstack import layout
from repro.netstack.aodv import AODV_COUNTER_CELLS
from repro.netstack.mac import MAC_COUNTER_CELLS

#: Words in one MAC frame buffer (RX_BUF and TX_BUF are adjacent).
_FRAME_WORDS = layout.TX_BUF - layout.RX_BUF

DEFAULT_INVARIANTS = (
    "energy_conservation",
    "meter_consistency",
    "clock_monotonic",
    "heap_liveness",
    "queue_bounds",
    "mac_legality",
    "aodv_legality",
    "energy_budget",
)


class InvariantViolation(SimulationError):
    """A watchdog invariant failed.

    Carries the invariant name, the node (or component) it failed on,
    and -- when the watchdog has a flight recorder -- a ring snapshot
    taken at detection time.
    """

    def __init__(self, invariant, message, node=None, snapshot=None):
        prefix = "%s: " % node if node else ""
        super().__init__("%sinvariant %r violated: %s"
                         % (prefix, invariant, message))
        self.invariant = invariant
        self.node = node
        self.snapshot = snapshot


class Watchdog:
    """Periodic invariant checker over processors, nodes, and kernels."""

    def __init__(self, interval=1e-3, invariants=None, recorder=None,
                 rel_tolerance=1e-9, budgets=None):
        if interval <= 0:
            raise ValueError("watchdog interval must be positive")
        unknown = set(invariants or ()) - set(DEFAULT_INVARIANTS)
        if unknown:
            raise ValueError("unknown invariants: %s"
                             % ", ".join(sorted(unknown)))
        self.interval = interval
        self.invariants = tuple(invariants) if invariants is not None \
            else DEFAULT_INVARIANTS
        self.recorder = recorder
        #: Relative tolerance for float energy reconciliation: the burst
        #: loop's write-backs are bit-identical, but component sums are
        #: accumulated in a different order than the total.
        self.rel_tolerance = rel_tolerance
        #: node name -> energy budget in joules; nodes absent from the
        #: map are exempt from the ``energy_budget`` invariant.
        self.budgets = dict(budgets) if budgets else {}
        self.kernel = None
        self.processors = []
        self._nodes = []
        self._handle = None
        self._last_now = None
        #: node name -> last sampled counter dicts, for monotonicity.
        self._mac_last = {}
        self._aodv_last = {}
        self.checks_run = 0

    @property
    def armed(self):
        """True while a periodic check is scheduled."""
        return self._handle is not None

    # -- registration ----------------------------------------------------------

    def watch(self, target):
        """Register a processor, node, or network simulator.

        Returns the list of processors newly covered (one for a core or
        node, one per node for a simulator).
        """
        if hasattr(target, "nodes"):        # NetworkSimulator
            added = []
            for node in target.nodes.values():
                added.extend(self._watch_node(node))
            self._adopt_kernel(target.kernel)
            return added
        if hasattr(target, "processor"):    # SensorNode
            added = self._watch_node(target)
            self._adopt_kernel(target.kernel)
            return added
        # Bare SnapProcessor.
        self.processors.append(target)
        self._adopt_kernel(target.kernel)
        return [target]

    def _watch_node(self, node):
        self._nodes.append(node)
        self.processors.append(node.processor)
        return [node.processor]

    def _adopt_kernel(self, kernel):
        if self.kernel is None:
            self.kernel = kernel
        elif self.kernel is not kernel:
            raise ValueError(
                "watchdog targets must share one kernel; observe the "
                "network simulator instead of its nodes individually")

    # -- scheduling ------------------------------------------------------------

    def start(self):
        """Arm the periodic check on the watched kernel."""
        if self.kernel is None:
            raise ValueError("nothing watched yet -- call watch() first")
        if self._handle is None:
            self._handle = self.kernel.schedule(self.interval, self._tick)
        return self

    def stop(self):
        """Disarm the periodic check."""
        if self._handle is not None:
            self.kernel.cancel(self._handle)
            self._handle = None

    def _tick(self):
        self._handle = None
        self.check()
        # Re-arm only while other activity is pending: once the rest of
        # the simulation drains, the watchdog must not keep the kernel
        # alive (that would mask deadlocks and hang unbounded runs).
        if self.kernel.pending > 0:
            self._handle = self.kernel.schedule(self.interval, self._tick)

    # -- checking --------------------------------------------------------------

    def check(self):
        """Run every enabled invariant once; raises on the first failure."""
        self.checks_run += 1
        enabled = self.invariants
        if self.kernel is not None and "clock_monotonic" in enabled:
            self._check_clock(self.kernel)
        if self.kernel is not None and "heap_liveness" in enabled:
            self._check_heap(self.kernel)
        for processor in self.processors:
            if "energy_conservation" in enabled:
                self._check_energy(processor)
            if "meter_consistency" in enabled:
                self._check_meter(processor)
            if "queue_bounds" in enabled:
                self._check_queues(processor)
        for node in self._nodes:
            if not node.loaded:
                continue
            if "mac_legality" in enabled:
                self._check_mac(node)
            if "aodv_legality" in enabled:
                self._check_aodv(node)
        if self.budgets and "energy_budget" in enabled:
            for node in self._nodes:
                self._check_budget(node)

    def _fail(self, invariant, message, node=None):
        snapshot = None
        if self.recorder is not None:
            snapshot = self.recorder.snapshot()
        raise InvariantViolation(invariant, message, node=node,
                                 snapshot=snapshot)

    # -- individual invariants -------------------------------------------------

    def _check_clock(self, kernel):
        now = kernel.now
        if not math.isfinite(now) or now < 0.0:
            self._fail("clock_monotonic",
                       "kernel time %r is not a finite non-negative value"
                       % (now,))
        if self._last_now is not None and now < self._last_now:
            self._fail("clock_monotonic",
                       "kernel time moved backwards: %r after %r"
                       % (now, self._last_now))
        self._last_now = now

    def _check_heap(self, kernel):
        live = kernel._live
        for handle, entry in live.items():
            if entry[1] != handle:
                self._fail("heap_liveness",
                           "live index handle %r points at heap entry %r"
                           % (handle, entry[1]))
            if entry[2] is None:
                self._fail("heap_liveness",
                           "handle %r was cancelled on the heap but leaked "
                           "in the live index" % (handle,))
        live_on_heap = sum(1 for entry in kernel._queue
                           if entry[2] is not None)
        if live_on_heap != len(live):
            self._fail("heap_liveness",
                       "%d live callbacks on the heap but %d indexed"
                       % (live_on_heap, len(live)))

    def _energy_close(self, total, components):
        tolerance = self.rel_tolerance * max(abs(total), abs(components),
                                             1e-12)
        return abs(total - components) <= tolerance

    def _check_energy(self, processor):
        meter = processor.meter
        components = (meter.core_energy + meter.memory_energy
                      + meter.wakeup_energy + meter.event_token_energy
                      + meter.idle_energy)
        if not self._energy_close(meter.total_energy, components):
            self._fail(
                "energy_conservation",
                "total %.18e J != component sum %.18e J (delta %.3e J)"
                % (meter.total_energy, components,
                   meter.total_energy - components),
                node=processor.name)

    def _check_meter(self, processor):
        meter = processor.meter
        by_class = sum(stats.count for stats in meter.by_class.values())
        if by_class != meter.instructions:
            self._fail("meter_consistency",
                       "per-class counts sum to %d but %d instructions "
                       "retired" % (by_class, meter.instructions),
                       node=processor.name)
        by_handler = sum(stats.instructions
                         for stats in meter.by_handler.values())
        if by_handler != meter.instructions:
            self._fail("meter_consistency",
                       "per-handler counts sum to %d but %d instructions "
                       "retired" % (by_handler, meter.instructions),
                       node=processor.name)
        if meter.cycles < meter.instructions:
            self._fail("meter_consistency",
                       "%d cycles < %d instructions"
                       % (meter.cycles, meter.instructions),
                       node=processor.name)
        instruction_energy = (meter.total_energy - meter.wakeup_energy
                              - meter.event_token_energy - meter.idle_energy)
        class_energy = sum(stats.energy for stats in meter.by_class.values())
        if not self._energy_close(instruction_energy, class_energy):
            self._fail("meter_consistency",
                       "per-class energy %.18e J != instruction energy "
                       "%.18e J" % (class_energy, instruction_energy),
                       node=processor.name)

    def _check_queues(self, processor):
        queue = processor.event_queue
        if len(queue) > queue.capacity:
            self._fail("queue_bounds",
                       "event queue holds %d tokens (capacity %d)"
                       % (len(queue), queue.capacity), node=processor.name)
        for fifo in (processor.mcp.incoming, processor.mcp.outgoing):
            if len(fifo) > fifo.capacity:
                self._fail("queue_bounds",
                           "%s holds %d words (capacity %d)"
                           % (fifo.name, len(fifo), fifo.capacity),
                           node=processor.name)

    def _check_mac(self, node):
        dmem = node.processor.dmem
        rx_index = dmem.peek(layout.RX_INDEX_ADDR)
        if rx_index > _FRAME_WORDS:
            self._fail("mac_legality",
                       "RX write index %d exceeds the %d-word frame buffer"
                       % (rx_index, _FRAME_WORDS), node=node.name)
        rx_expect = dmem.peek(layout.RX_EXPECT_ADDR)
        if rx_expect > _FRAME_WORDS:
            self._fail("mac_legality",
                       "RX expected length %d exceeds the %d-word frame "
                       "buffer" % (rx_expect, _FRAME_WORDS), node=node.name)
        rx_ready = dmem.peek(layout.RX_READY_ADDR)
        if rx_ready not in (0, 1):
            self._fail("mac_legality",
                       "RX_READY is %d, expected a 0/1 flag" % rx_ready,
                       node=node.name)
        self._check_counters("mac_legality", node, dmem, MAC_COUNTER_CELLS,
                             self._mac_last)

    def _check_aodv(self, node):
        dmem = node.processor.dmem
        seen_idx = dmem.peek(layout.SEEN_IDX_ADDR)
        if seen_idx >= layout.SEEN_ENTRIES:
            self._fail("aodv_legality",
                       "RREQ seen-table index %d outside the %d-entry ring"
                       % (seen_idx, layout.SEEN_ENTRIES), node=node.name)
        self._check_counters("aodv_legality", node, dmem, AODV_COUNTER_CELLS,
                             self._aodv_last)

    def _check_budget(self, node):
        budget = self.budgets.get(node.name)
        if budget is None:
            return
        spent = node.meter.total_energy + node.radio.radio_energy()
        if spent > budget:
            self._fail("energy_budget",
                       "node spent %.6e J of its %.6e J budget "
                       "(%.1f%% over)"
                       % (spent, budget, 100.0 * (spent / budget - 1.0)),
                       node=node.name)

    def _check_counters(self, invariant, node, dmem, cells, last_map):
        current = {name: dmem.peek(address)
                   for name, address in cells.items()}
        last = last_map.get(node.name)
        if last is not None:
            for name, value in current.items():
                delta = (value - last[name]) & 0xFFFF
                if delta >= 0x8000:
                    self._fail(invariant,
                               "counter %r moved backwards: %d after %d"
                               % (name, value, last[name]), node=node.name)
        last_map[node.name] = current
