"""Float-free projections of trace events and telemetry records.

Golden tests, the telemetry dashboard regression, and the snap-diff
alignment engine all need the same reduction: strip a typed event (or a
telemetry stream record) down to the fields that are stable across
hosts, refactors, and energy-model recalibrations -- types, ordering,
names, PCs, mnemonics, queue depths, radio words, integer counters --
and drop everything float-valued (times, energies, durations, rates).

Until this module existed the reduction was copied between the golden
trace tests and the telemetry stream tests; it now lives here so
:mod:`repro.obs.diff` can align two runs on exactly the projection the
goldens pin.

Two projections are provided:

* :func:`project_event` / :func:`project_trace` for
  :class:`~repro.obs.events.TraceEvent` objects or their
  ``to_record()`` dicts (trace-bus streams, JSONL trace files);
* :func:`project_telemetry` for ``repro.obs.telemetry/1`` NDJSON
  records.
"""

#: Per-kind trace-event fields that must stay stable across runs and
#: refactors.  Times, energies, durations, and latencies are
#: deliberately excluded: projections pin structure and ordering, not
#: the energy model's floats.
STABLE_FIELDS = {
    "instruction": ("node", "pc", "mnemonic", "handler"),
    "dispatch": ("node", "event", "handler"),
    "sleep": ("node",),
    "wakeup": ("node",),
    "enqueue": ("node", "event", "depth"),
    "drop": ("node", "event"),
    "command": ("node", "command"),
    "radio_tx": ("node", "word"),
    "radio_rx": ("node", "word"),
    "radio_drop": ("node", "word", "reason"),
    "energy": ("node", "instructions"),
    "span": ("node", "journey", "span", "parent", "op", "pkt", "src",
             "dst", "seq", "words", "reason"),
    "timeline": ("node", "radio_mode", "queue_depth", "instructions"),
}


def project_event(event):
    """Reduce one trace event (object or record dict) to its stable core.

    Unknown kinds keep every non-float field, so the projection degrades
    gracefully when new event types appear before this table learns
    about them.
    """
    record = event if isinstance(event, dict) else event.to_record()
    kind = record["type"]
    fields = STABLE_FIELDS.get(kind)
    stable = {"type": kind}
    if fields is None:
        for name, value in record.items():
            if name != "type" and not isinstance(value, float):
                stable[name] = value
        return stable
    for name in fields:
        stable[name] = record.get(name)
    return stable


def project_trace(events):
    """Project a whole trace stream (events or record dicts)."""
    return [project_event(event) for event in events]


def project_telemetry(records):
    """Reduce ``repro.obs.telemetry/1`` stream records to their
    float-free, machine-independent core: types, ordering, names, and
    integer counters.  Times, energies, and rates are excluded (repo
    golden convention)."""
    projected = []
    for record in records:
        rtype = record["type"]
        stable = {"type": rtype, "seq": record["seq"]}
        if rtype == "hello":
            stable.update(schema=record["schema"], nodes=record["nodes"])
        elif rtype == "progress":
            stable.update(events=record["events"],
                          instructions=record["instructions"])
        elif rtype == "metrics":
            stable.update(full=record["full"],
                          names=sorted(record["values"]))
        elif rtype == "timeline":
            stable["rows"] = [
                {"node": row["node"], "queue_depth": row["queue_depth"],
                 "radio_mode": row["radio_mode"],
                 "instructions": row["instructions"]}
                for row in record["rows"]]
        elif rtype == "handlers":
            stable["top"] = [
                {"node": entry["node"], "handler": entry["handler"],
                 "instructions": entry["instructions"],
                 "invocations": entry["invocations"]}
                for entry in record["top"]]
        elif rtype == "journeys":
            stable.update(
                completed=[done["journey"] for done in record["completed"]],
                stats={key: value
                       for key, value in record["stats"].items()
                       if isinstance(value, (int, dict))})
        elif rtype == "watchdog":
            stable.update(checks_total=record["checks_total"])
        elif rtype == "events":
            stable["events"] = [event["type"] for event in record["events"]]
        elif rtype == "bye":
            stable.update(records_sent=record["records_sent"],
                          flushes=record["flushes"])
        projected.append(stable)
    return projected
