"""Per-handler and per-PC profiling, layered on the trace bus.

The :class:`Profiler` is a trace-bus sink: it consumes
``InstructionRetired`` and ``HandlerDispatch`` events and accumulates

* per-handler time, energy, instruction count, and invocation count
  (the software view of the paper's Table 1), and
* per-PC hot spots (count, time, energy) for finding the expensive
  instructions inside a handler.

Because it sums the same per-instruction energies the
:class:`~repro.energy.accounting.EnergyMeter` records, its totals
reconcile with the meter's instruction energy exactly (the meter's
*total* additionally includes wakeup, event-token, and idle leakage
energy, which are not per-instruction costs).
"""

from dataclasses import dataclass, field


@dataclass
class HandlerProfile:
    """Accumulated cost of one handler tag."""

    tag: str
    invocations: int = 0
    instructions: int = 0
    energy: float = 0.0
    time: float = 0.0
    dispatch_latency: float = 0.0

    @property
    def energy_per_invocation(self):
        return self.energy / self.invocations if self.invocations else 0.0

    @property
    def instructions_per_invocation(self):
        return self.instructions / self.invocations if self.invocations else 0.0


@dataclass
class PcProfile:
    """Accumulated cost of one program-counter location."""

    pc: int
    count: int = 0
    energy: float = 0.0
    time: float = 0.0
    mnemonic: str = ""


class Profiler:
    """A trace-bus sink that attributes time and energy."""

    def __init__(self):
        self.by_handler = {}
        self.by_pc = {}
        self.instructions = 0
        self.energy = 0.0
        self.time = 0.0

    # -- the sink interface ---------------------------------------------------

    def __call__(self, event):
        kind = event.kind
        if kind == "instruction":
            self._instruction(event)
        elif kind == "dispatch":
            self._dispatch(event)

    def _instruction(self, event):
        self.instructions += 1
        self.energy += event.energy
        self.time += event.duration

        handler = self.by_handler.get(event.handler)
        if handler is None:
            handler = self.by_handler[event.handler] = HandlerProfile(
                event.handler)
        handler.instructions += 1
        handler.energy += event.energy
        handler.time += event.duration

        spot = self.by_pc.get(event.pc)
        if spot is None:
            spot = self.by_pc[event.pc] = PcProfile(
                event.pc, mnemonic=event.mnemonic)
        spot.count += 1
        spot.energy += event.energy
        spot.time += event.duration

    def _dispatch(self, event):
        handler = self.by_handler.get(event.handler)
        if handler is None:
            handler = self.by_handler[event.handler] = HandlerProfile(
                event.handler)
        handler.invocations += 1
        handler.dispatch_latency += event.latency

    # -- queries --------------------------------------------------------------

    def hotspots(self, top=10):
        """The *top* PCs by energy, hottest first."""
        spots = sorted(self.by_pc.values(), key=lambda s: -s.energy)
        return spots[:top]

    def handler_profiles(self):
        """Handler profiles sorted by total energy, hottest first."""
        return sorted(self.by_handler.values(), key=lambda h: -h.energy)

    def reconcile(self, meter):
        """Compare this profile against an :class:`EnergyMeter`.

        Returns ``(profiled_energy, meter_instruction_energy)`` -- the
        meter's total minus its non-instruction costs (wakeup, event
        tokens, idle leakage).  The two agree to float tolerance when the
        profiler observed the whole run.
        """
        meter_instruction_energy = (meter.total_energy
                                    - meter.wakeup_energy
                                    - meter.event_token_energy
                                    - meter.idle_energy)
        return self.energy, meter_instruction_energy

    # -- reporting ------------------------------------------------------------

    def report(self, top=10, program=None):
        """A human-readable profile: handlers, then PC hot spots.

        With *program* (a linked :class:`~repro.asm.Program` carrying a
        line table), each hot PC is annotated with its source location.
        """
        lines = ["profile: %d instructions, %.3f nJ, %.6f s busy"
                 % (self.instructions, self.energy * 1e9, self.time)]
        lines.append("-- handlers (by energy) --")
        for handler in self.handler_profiles():
            lines.append(
                "  %-12s %6d runs %8d ins %10.3f nJ %10.6f s"
                % (handler.tag, handler.invocations, handler.instructions,
                   handler.energy * 1e9, handler.time))
        spots = self.hotspots(top)
        if spots:
            lines.append("-- hot PCs (top %d by energy) --" % len(spots))
            for spot in spots:
                where = ""
                if program is not None:
                    loc = program.lookup(spot.pc)
                    if loc.file is not None or loc.function is not None:
                        where = "  %s" % loc
                lines.append(
                    "  %04x %-18s %8d hits %10.3f nJ %10.6f s%s"
                    % (spot.pc, spot.mnemonic, spot.count,
                       spot.energy * 1e9, spot.time, where))
        return "\n".join(lines)
