"""Distributed packet-journey tracing.

The netstack runs as guest SNAP assembly, so packets cannot carry a
host-side trace id without changing the simulated byte stream (and the
observability layer must keep disabled runs bit-identical).  Instead the
:class:`JourneyTracker` *reconstructs* journeys from the word-level
events the radios and the channel already expose:

* each radio's transmit stream is reframed with the MAC's own framing
  rule (:func:`repro.netstack.mac.frame_total_words`), recovering every
  packet a node put on the air;
* the channel reports the per-receiver outcome of every word (clean,
  collision, noise, receiver not listening), so the tracker knows which
  radios heard the whole packet and which lost it, and why;
* hops are stitched into journeys by the protocol's hop-invariant
  identities (:func:`repro.netstack.aodv.journey_key`,
  :func:`repro.netstack.reliable.ack_journey_key`) -- the same keys the
  guest's duplicate-suppression logic uses.

Each reconstructed hop becomes a small tree of typed spans -- ``send``
(or ``forward``), ``air``, then per receiver ``receive`` / ``overhear``
/ ``drop``-with-reason, plus ``deliver`` at the journey's final
destination -- linked by parent ids into one tree per journey.  Spans
are emitted on the trace bus as :class:`~repro.obs.events.PacketSpan`
events (exported to Chrome tracing as flow events) and kept in
:class:`Journey` objects for tree rendering and per-hop tables.

Energy attribution is the radio energy of each span: transmit power
over the serialization window for sends, receive power over the
listening window for receives and overhears.  CPU energy stays with the
per-handler profiler, which attributes it exactly.
"""

from dataclasses import dataclass
from typing import Optional

from repro.netstack.aodv import (
    PACKET_KIND_NAMES,
    is_no_route_forward,
    journey_destination,
    journey_key,
)
from repro.netstack.layout import ADDR_BROADCAST, checksum, inspect_packet
from repro.netstack.mac import MAX_FRAME_WORDS, frame_total_words
from repro.netstack.reliable import ack_journey_key
from repro.radio.transceiver import RadioConfig

#: Channel-delivery outcomes that leave a word in the receiver's hands.
_RECEIVED_OUTCOMES = frozenset(("ok", "flipped"))

#: Drop reasons, in blame order: the first failed word names the hop's
#: fate ("bit_error" covers both noise modes; "flipped" words surface
#: later as "bad_checksum" because the guest MAC catches them there).
_DROP_REASONS = {"collision": "collision", "noise": "bit_error",
                 "not_listening": "not_listening"}


@dataclass
class Span:
    """One node of a journey tree."""

    journey: int
    span: int
    parent: Optional[int]
    op: str
    node: str
    time: float
    duration: float
    energy: float
    pkt: str
    src: int
    dst: int
    seq: int
    words: int
    reason: Optional[str] = None


class Journey:
    """The reconstructed end-to-end life of one packet."""

    def __init__(self, journey_id, kind, key, origin, destination, seq):
        self.id = journey_id
        self.kind = kind
        self.key = key
        #: Node name that first put the packet on the air.
        self.origin = origin
        #: Node id the journey terminates at (protocol-dependent).
        self.destination = destination
        self.seq = seq
        self.spans = []
        self.t_start = None
        self.delivered_at = None
        self.drop_reasons = []
        #: Latest receive span per radio name, for forward-linking.
        self._last_receive = {}

    @property
    def delivered(self):
        return self.delivered_at is not None

    @property
    def forwards(self):
        return sum(1 for span in self.spans if span.op == "forward")

    @property
    def hop_count(self):
        """Transmissions this packet took (sends + forwards)."""
        return sum(1 for span in self.spans if span.op in ("send", "forward"))

    @property
    def latency(self):
        """Origin send start to final delivery, or ``None`` if undelivered."""
        if self.delivered_at is None or self.t_start is None:
            return None
        return self.delivered_at - self.t_start

    @property
    def energy(self):
        """Total radio energy attributed to this journey (joules)."""
        return sum(span.energy for span in self.spans)

    def summary(self):
        """A flat JSON-friendly digest of the journey."""
        return {
            "journey": self.id,
            "kind": self.kind,
            "origin": self.origin,
            "destination": self.destination,
            "seq": self.seq,
            "spans": len(self.spans),
            "hops": self.hop_count,
            "forwards": self.forwards,
            "delivered": self.delivered,
            "latency_s": self.latency,
            "energy_j": self.energy,
            "drop_reasons": list(self.drop_reasons),
        }

    def _describe(self, span):
        text = "%s %s @%.3fms" % (span.op, span.node, span.time * 1e3)
        if span.op in ("send", "forward", "air"):
            text += " %dw %.2fms" % (span.words, span.duration * 1e3)
        if span.energy:
            text += " %.1fnJ" % (span.energy * 1e9)
        if span.reason:
            text += " reason=%s" % span.reason
        return text

    def tree(self):
        """Render the span tree as indented text."""
        children = {}
        roots = []
        for span in self.spans:
            if span.parent is None:
                roots.append(span)
            else:
                children.setdefault(span.parent, []).append(span)
        header = "journey #%d %s seq=%d origin=%s" % (
            self.id, self.kind, self.seq, self.origin)
        if self.destination is not None:
            header += " dest=%s" % self.destination
        if self.delivered:
            header += " delivered (%.2fms, %d hops, %.1fnJ)" % (
                self.latency * 1e3, self.hop_count, self.energy * 1e9)
        elif self.drop_reasons:
            header += " dropped (%s)" % ", ".join(self.drop_reasons)
        else:
            header += " in flight"
        lines = [header]

        def render(span, depth):
            lines.append("  " * depth + self._describe(span))
            for child in children.get(span.span, ()):
                render(child, depth + 1)

        for root in roots:
            render(root, 1)
        return "\n".join(lines)


class _TxStream:
    """Reframing state for one radio's transmit word stream."""

    __slots__ = ("words", "t_start", "t_end", "deliveries", "complete")

    def __init__(self):
        self.reset()

    def reset(self):
        self.words = []
        self.t_start = None
        self.t_end = None
        #: receiver radio name -> [(delivered_word, outcome), ...]
        self.deliveries = {}
        self.complete = False


class _NodeInfo:
    """Registered identity and radio physics of one node."""

    __slots__ = ("node_id", "name", "word_duration", "tx_power", "rx_power")

    def __init__(self, node_id, name, config):
        self.node_id = node_id
        self.name = name
        self.word_duration = config.word_duration
        self.tx_power = config.tx_power_w
        self.rx_power = config.rx_power_w


class JourneyTracker:
    """Reconstructs packet journeys from radio and channel word events.

    Created by ``Observability(journeys=True)``; fed through the
    observability hooks, never directly by components.  Emits
    :class:`~repro.obs.events.PacketSpan` events on the trace bus and
    retains :class:`Journey` objects (up to *max_journeys*, oldest
    evicted first) for reports.
    """

    def __init__(self, obs, max_journeys=10_000):
        self._obs = obs
        self._max_journeys = max_journeys
        self.journeys = []
        self._by_key = {}
        self._streams = {}
        self._info = {}
        self._next_journey = 1
        self._next_span = 1

    # -- registration ---------------------------------------------------------

    def register(self, node_id, name, radio_name, radio_config):
        """Register a node's identity and radio physics (called when a
        node attaches observability)."""
        self._info[radio_name] = _NodeInfo(node_id, name, radio_config)

    def _node_info(self, radio_name):
        info = self._info.get(radio_name)
        if info is None:
            # Unregistered radio (bare Radio in a harness): fall back to
            # default physics and the radio's own name.
            name = radio_name[:-6] if radio_name.endswith(".radio") \
                else radio_name
            info = _NodeInfo(None, name, RadioConfig())
            self._info[radio_name] = info
        return info

    # -- word-level feed (via Observability hooks) ----------------------------

    def radio_tx(self, radio_name, time, word):
        """One word finished serializing at *radio_name*."""
        stream = self._streams.get(radio_name)
        if stream is None:
            stream = self._streams[radio_name] = _TxStream()
        if stream.complete:
            # Channel-less radios never get word_done; finalize late.
            self._finalize(radio_name, stream)
        info = self._node_info(radio_name)
        if not stream.words:
            stream.t_start = time - info.word_duration
        stream.words.append(word)
        stream.t_end = time
        total = frame_total_words(stream.words)
        if total is not None and len(stream.words) >= total:
            stream.complete = True
        elif total is None and len(stream.words) >= MAX_FRAME_WORDS:
            # Unframeable stream (raw words, wild length): resynchronize
            # exactly like the guest MAC does.
            stream.reset()

    def channel_delivery(self, sender, receiver, time, word, outcome):
        """The channel resolved one word at one receiver."""
        stream = self._streams.get(sender)
        if stream is None or not stream.words:
            return
        stream.deliveries.setdefault(receiver, []).append((word, outcome))

    def word_done(self, sender, time):
        """The channel finished fanning one of *sender*'s words out."""
        stream = self._streams.get(sender)
        if stream is not None and stream.complete:
            self._finalize(sender, stream)

    def flush(self):
        """Finalize any complete frames still buffered (end of run)."""
        for radio_name, stream in self._streams.items():
            if stream.complete:
                self._finalize(radio_name, stream)

    # -- journey assembly -----------------------------------------------------

    def _classify(self, packet):
        kind = PACKET_KIND_NAMES.get(packet["type"])
        key = journey_key(packet)
        destination = journey_destination(packet)
        if key is None:
            key = ack_journey_key(packet)
            if key is not None:
                kind = "ack"
                destination = packet["dst"]
        if key is None:
            kind = kind or ("pkt%d" % packet["type"])
            key = (kind, packet["src"], packet["dst"], packet["seq"])
        return kind, key, destination

    def _journey(self, kind, key, origin, destination, seq):
        journey = self._by_key.get(key)
        if journey is None:
            journey = Journey(self._next_journey, kind, key, origin,
                              destination, seq)
            self._next_journey += 1
            self.journeys.append(journey)
            self._by_key[key] = journey
            if self._obs is not None:
                self._obs.metrics.counter("net.journeys").inc()
            if len(self.journeys) > self._max_journeys:
                oldest = self.journeys.pop(0)
                if self._by_key.get(oldest.key) is oldest:
                    del self._by_key[oldest.key]
        return journey

    def _span(self, journey, parent, op, node, time, duration, energy,
              packet, words, reason=None):
        span = Span(journey=journey.id, span=self._next_span, parent=parent,
                    op=op, node=node, time=time, duration=duration,
                    energy=energy, pkt=journey.kind, src=packet["src"],
                    dst=packet["dst"], seq=packet["seq"], words=words,
                    reason=reason)
        self._next_span += 1
        journey.spans.append(span)
        if self._obs is not None:
            self._obs.packet_span(span)
        return span

    def _finalize(self, radio_name, stream):
        words = stream.words
        t_start, t_end = stream.t_start, stream.t_end
        deliveries = stream.deliveries
        stream.reset()

        packet = inspect_packet(words)
        if packet is None:
            return
        info = self._node_info(radio_name)
        metrics = self._obs.metrics if self._obs is not None else None

        kind, key, destination = self._classify(packet)
        journey = self._journey(kind, key, info.name, destination,
                                packet["seq"])
        if journey.t_start is None:
            journey.t_start = t_start

        parent_receive = journey._last_receive.get(radio_name)
        op = "send" if parent_receive is None else "forward"
        parent = None if parent_receive is None else parent_receive.span
        duration = t_end - t_start
        tx_energy = len(words) * info.word_duration * info.tx_power
        send = self._span(journey, parent, op, info.name, t_start, duration,
                          tx_energy, packet, len(words))

        # A DATA packet addressed to broadcast is a failed route lookup
        # (aodv_forward wrote rt_lookup's 0xFFFF miss into the header).
        if is_no_route_forward(packet):
            self._span(journey, send.span, "drop", info.name, t_end, 0.0,
                       0.0, packet, len(words), reason="no_route")
            journey.drop_reasons.append("no_route")
            if metrics is not None:
                metrics.counter("net.drops.no_route").inc()

        air = self._span(journey, send.span, "air", "channel", t_start,
                         duration, 0.0, packet, len(words))

        for receiver, outcomes in deliveries.items():
            self._resolve_receiver(journey, air, packet, words, receiver,
                                   outcomes, send, t_end, metrics)

    def _resolve_receiver(self, journey, air, packet, words, receiver,
                          outcomes, send, t_end, metrics):
        rinfo = self._node_info(receiver)
        rx_energy = len(outcomes) * rinfo.word_duration * rinfo.rx_power
        failed = next((outcome for _, outcome in outcomes
                       if outcome not in _RECEIVED_OUTCOMES), None)
        if failed is None and len(outcomes) == len(words):
            delivered = [word for word, _ in outcomes]
            if checksum(delivered[:-1]) != delivered[-1]:
                reason = "bad_checksum"
            else:
                reason = None
        elif failed is None:
            reason = "truncated"
        else:
            reason = _DROP_REASONS.get(failed, failed)

        if reason is not None:
            self._span(journey, air.span, "drop", rinfo.name, t_end, 0.0,
                       rx_energy, packet, len(outcomes), reason=reason)
            journey.drop_reasons.append(reason)
            if metrics is not None:
                metrics.counter("net.drops." + reason).inc()
            return

        # A clean packet.  The guest MAC filter only passes frames for
        # this node or broadcast; overheard unicasts cost listen energy
        # but do not advance the journey.
        if (rinfo.node_id is not None
                and packet["dst"] not in (rinfo.node_id, ADDR_BROADCAST)):
            self._span(journey, air.span, "overhear", rinfo.name, t_end,
                       len(words) * rinfo.word_duration, rx_energy,
                       packet, len(words))
            return

        receive = self._span(journey, air.span, "receive", rinfo.name, t_end,
                             len(words) * rinfo.word_duration, rx_energy,
                             packet, len(words))
        journey._last_receive[receiver] = receive
        if metrics is not None:
            metrics.histogram("net.hop_latency_s").observe(
                receive.time - send.time)
        if (rinfo.node_id is not None
                and journey.destination == rinfo.node_id):
            self._span(journey, receive.span, "deliver", rinfo.name, t_end,
                       0.0, 0.0, packet, len(words))
            journey.delivered_at = t_end
            if metrics is not None:
                metrics.counter("net.journeys_delivered").inc()
                if journey.latency is not None:
                    metrics.histogram("net.journey_latency_s").observe(
                        journey.latency)

    # -- reports --------------------------------------------------------------

    def summaries(self):
        """Flat digests of every retained journey."""
        return [journey.summary() for journey in self.journeys]

    def hop_rows(self):
        """Per-hop table rows across all journeys.

        One row per (transmission, receiver outcome): journey id, packet
        kind, hop index within the journey, sender, receiver, outcome
        (``receive``/``overhear``/drop reason), hop latency in seconds,
        words on the air, and the hop's radio energy (tx + that
        receiver's rx) in joules.
        """
        rows = []
        for journey in self.journeys:
            spans = {span.span: span for span in journey.spans}
            hop_index = {}
            hops = 0
            for span in journey.spans:
                if span.op in ("send", "forward"):
                    hops += 1
                    hop_index[span.span] = hops
            for span in journey.spans:
                if span.op not in ("receive", "overhear", "drop"):
                    continue
                air = spans.get(span.parent)
                if air is None:
                    continue
                send = spans.get(air.parent) if air.op == "air" else air
                if send is None:
                    continue
                rows.append({
                    "journey": journey.id,
                    "kind": journey.kind,
                    "hop": hop_index.get(send.span, 0),
                    "from": send.node,
                    "to": span.node,
                    "outcome": span.reason or span.op,
                    "latency_s": span.time - send.time,
                    "words": send.words,
                    "energy_j": send.energy + span.energy,
                })
        return rows

    def report(self):
        """Every journey tree, rendered as text."""
        return "\n\n".join(journey.tree() for journey in self.journeys)
