"""Unified observability for the SNAP/LE simulation stack.

Cooperating pieces, all opt-in and zero-cost when detached:

* a **structured trace bus** (:mod:`repro.obs.bus`) carrying typed
  events (:mod:`repro.obs.events`) to sinks -- in-memory ring, JSONL
  stream, Chrome ``chrome://tracing`` export;
* a **metrics registry** (:mod:`repro.obs.metrics`) of counters, gauges,
  and histograms wired into the core, event queue, coprocessors, radio,
  and channel;
* a **profiler** (:mod:`repro.obs.profiler`) attributing time and energy
  per handler and per PC, reconciling against the
  :class:`~repro.energy.accounting.EnergyMeter`;
* an **energy ledger** (:mod:`repro.obs.energy`) attributing every
  picojoule to guest source lines (collapsed-stack / speedscope flame
  graphs), protocol layers, and individual packet journeys, plus
  battery-lifetime projection -- every view reconciles against the
  meter with its residual reported (CLI: ``snap-energy``);
* a **blackbox** (:mod:`repro.obs.blackbox`) -- a bounded flight
  recorder of recently retired instructions and events -- with a
  **watchdog** (:mod:`repro.obs.watchdog`) re-checking simulator
  invariants at a fixed cadence, and **crash bundles**
  (:mod:`repro.obs.postmortem`) that symbolicate the recorded tail back
  to C source lines on any fault (CLI: ``snap-flight``);
* a **differential analyzer** (:mod:`repro.obs.diff`) aligning two runs
  event-by-event to localize their first divergence -- time window via
  checkpoint bisection, node, handler, symbolicated PC, flight-recorder
  tails -- and comparing intentionally different runs (two voltages, two
  engines) as per-handler/per-PC/per-flow delta reports
  (``repro.obs.diff/1``, CLI: ``snap-diff``), on the shared float-free
  projections of :mod:`repro.obs.project`;
* a **telemetry exporter** (:mod:`repro.obs.telemetry`) streaming
  batched deltas of all of the above as versioned NDJSON
  (``repro.obs.telemetry/1``) over non-blocking transports
  (:mod:`repro.obs.transports`) -- file, stdout, or a localhost socket
  that live ``snap-top`` dashboards attach to mid-run.

Typical use::

    from repro.obs import Observability

    obs = Observability(profile=True)
    obs.observe(node)                  # or processor, or NetworkSimulator
    node.run(until=0.1)
    print(obs.profiler.report())
    print(obs.metrics.snapshot())

The ``snap-prof`` CLI (``python -m repro.tools.snap_prof``) wraps this
for one-shot program profiling.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.bus import (
    JsonlSink,
    KindFilter,
    MemorySink,
    TraceBus,
    chrome_trace,
    read_jsonl,
    write_chrome_trace,
)
from repro.obs.blackbox import Blackbox, FlightRecorder
from repro.obs.context import Observability
from repro.obs.diff import (
    Bisector,
    Divergence,
    RunCapture,
    align,
    capture_from_checkpoint,
    capture_run,
    compare,
    first_divergence,
    load_trace,
)
from repro.obs.energy import (
    EnergyLedger,
    LineStat,
    layer_split_from_meter,
    project_lifetime,
)
from repro.obs.events import EVENT_KINDS, PacketSpan, TimelineSample, TraceEvent
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.postmortem import (
    build_crash_bundle,
    normalize_bundle,
    render_markdown,
    write_bundle,
)
from repro.obs.profiler import HandlerProfile, PcProfile, Profiler
from repro.obs.telemetry import TelemetryExporter, TelemetryView
from repro.obs.timeline import TimelineSampler
from repro.obs.transports import (
    FileTransport,
    NullTransport,
    SocketServerTransport,
    StreamTransport,
    TelemetryTransport,
)
from repro.obs.project import (
    STABLE_FIELDS,
    project_event,
    project_telemetry,
    project_trace,
)
from repro.obs.watchdog import InvariantViolation, Watchdog

__all__ = [
    "Observability",
    "Bisector",
    "Divergence",
    "RunCapture",
    "align",
    "capture_from_checkpoint",
    "capture_run",
    "compare",
    "first_divergence",
    "load_trace",
    "STABLE_FIELDS",
    "project_event",
    "project_telemetry",
    "project_trace",
    "Blackbox",
    "FlightRecorder",
    "Watchdog",
    "InvariantViolation",
    "build_crash_bundle",
    "normalize_bundle",
    "render_markdown",
    "write_bundle",
    "TraceBus",
    "MemorySink",
    "JsonlSink",
    "KindFilter",
    "chrome_trace",
    "write_chrome_trace",
    "read_jsonl",
    "EVENT_KINDS",
    "TraceEvent",
    "PacketSpan",
    "TimelineSample",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Profiler",
    "HandlerProfile",
    "PcProfile",
    "EnergyLedger",
    "LineStat",
    "layer_split_from_meter",
    "project_lifetime",
    "TimelineSampler",
    "TelemetryExporter",
    "TelemetryView",
    "TelemetryTransport",
    "FileTransport",
    "StreamTransport",
    "NullTransport",
    "SocketServerTransport",
]
