"""The :class:`Observability` context: one trace bus + one metrics
registry + an optional profiler, shared by every instrumented component.

Components (processor, event queue, coprocessor, radio, channel) keep an
``obs`` attribute that defaults to ``None`` and guard each hook call with
``if self.obs is not None`` -- the disabled path touches no observability
code, so simulation results are bit-identical with and without the layer
(verified by ``tests/test_obs_profiler.py``).

The hook methods below are the single funnel: they update the metrics
registry and emit one typed event onto the bus.  Metric names are dotted
``<component>.<metric>`` paths; see ``docs/OBSERVABILITY.md`` for the
full catalogue.
"""

from repro.obs.bus import TraceBus
from repro.obs.events import (
    CoprocessorCommand,
    EnergySample,
    EventDropped,
    EventEnqueued,
    HandlerDispatch,
    InstructionRetired,
    RadioDrop,
    RadioRx,
    RadioTx,
    SleepEnter,
    Wakeup,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import Profiler


class Observability:
    """Bundles the trace bus, metrics registry, and optional profiler."""

    def __init__(self, bus=None, metrics=None, profile=False):
        self.bus = bus if bus is not None else TraceBus()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profiler = None
        if profile:
            self.profiler = self.bus.attach(Profiler())

    def observe(self, target):
        """Attach this context to any instrumentable *target*.

        The target must implement ``attach_observability(obs)`` (the
        processor, node, and network simulator all do).  Returns the
        target for chaining.
        """
        target.attach_observability(self)
        return target

    # -- processor hooks ------------------------------------------------------

    def instruction_retired(self, node, time, pc, instruction, handler,
                            energy, duration):
        self.metrics.counter(node + ".instructions").inc()
        self.bus.emit(InstructionRetired(
            time=time, node=node, pc=pc, mnemonic=instruction.text(),
            instr_class=instruction.spec.instr_class.value,
            handler=handler, energy=energy, duration=duration))

    def handler_dispatch(self, node, time, event_name, handler, latency):
        self.metrics.counter(node + ".dispatches").inc()
        self.metrics.histogram(node + ".dispatch_latency").observe(latency)
        self.bus.emit(HandlerDispatch(
            time=time, node=node, event=event_name, handler=handler,
            latency=latency))

    def sleep_enter(self, node, time):
        self.metrics.counter(node + ".sleeps").inc()
        self.bus.emit(SleepEnter(time=time, node=node))

    def wakeup(self, node, time, idle):
        self.metrics.counter(node + ".wakeups").inc()
        self.bus.emit(Wakeup(time=time, node=node, idle=idle))

    def energy_sample(self, node, time, energy, instructions):
        self.bus.emit(EnergySample(time=time, node=node, energy=energy,
                                   instructions=instructions))

    # -- event-queue hooks ----------------------------------------------------

    def event_enqueued(self, node, time, event_name, depth):
        self.metrics.counter(node + ".inserted").inc()
        self.metrics.gauge(node + ".depth").set(depth)
        self.bus.emit(EventEnqueued(time=time, node=node, event=event_name,
                                    depth=depth))

    def event_dropped(self, node, time, event_name):
        self.metrics.counter(node + ".dropped").inc()
        self.bus.emit(EventDropped(time=time, node=node, event=event_name))

    def queue_depth(self, node, depth):
        self.metrics.gauge(node + ".depth").set(depth)

    # -- message-coprocessor hooks --------------------------------------------

    def coproc_command(self, node, time, command, word):
        self.metrics.counter(node + ".commands").inc()
        self.bus.emit(CoprocessorCommand(time=time, node=node,
                                         command=command, word=word))

    # -- radio and channel hooks ----------------------------------------------

    def radio_tx(self, node, time, word, queue_depth):
        self.metrics.counter(node + ".tx_words").inc()
        self.metrics.gauge(node + ".tx_queue_depth").set(queue_depth)
        self.bus.emit(RadioTx(time=time, node=node, word=word))

    def radio_rx(self, node, time, word):
        self.metrics.counter(node + ".rx_words").inc()
        self.bus.emit(RadioRx(time=time, node=node, word=word))

    def radio_drop(self, node, time, word, reason):
        self.metrics.counter(node + ".dropped_words").inc()
        self.metrics.counter(node + ".dropped_words." + reason).inc()
        self.bus.emit(RadioDrop(time=time, node=node, word=word,
                                reason=reason))

    def channel_word(self):
        self.metrics.counter("channel.words_carried").inc()

    def channel_collision(self):
        self.metrics.counter("channel.collisions").inc()

    def channel_noise(self):
        self.metrics.counter("channel.noise_corruptions").inc()
