"""The :class:`Observability` context: one trace bus + one metrics
registry + an optional profiler, shared by every instrumented component.

Components (processor, event queue, coprocessor, radio, channel) keep an
``obs`` attribute that defaults to ``None`` and guard each hook call with
``if self.obs is not None`` -- the disabled path touches no observability
code, so simulation results are bit-identical with and without the layer
(verified by ``tests/test_obs_profiler.py``).

The hook methods below are the single funnel: they update the metrics
registry and emit one typed event onto the bus.  Metric names are dotted
``<component>.<metric>`` paths; see ``docs/OBSERVABILITY.md`` for the
full catalogue.
"""

from repro.obs.bus import TraceBus
from repro.obs.events import (
    CoprocessorCommand,
    EnergySample,
    EventDropped,
    EventEnqueued,
    HandlerDispatch,
    InstructionRetired,
    PacketSpan,
    RadioDrop,
    RadioRx,
    RadioTx,
    SleepEnter,
    TimelineSample,
    Wakeup,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import Profiler


class Observability:
    """Bundles the trace bus, metrics registry, optional profiler, and
    optional packet-journey tracker."""

    def __init__(self, bus=None, metrics=None, profile=False, journeys=False,
                 flight=False, energy=False):
        self.bus = bus if bus is not None else TraceBus()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profiler = None
        if profile:
            self.profiler = self.bus.attach(Profiler())
        #: Optional :class:`~repro.obs.energy.EnergyLedger` attributing
        #: every picojoule to source lines, layers, and packets.
        self.energy = None
        if energy:
            from repro.obs.energy import EnergyLedger
            self.energy = self.bus.attach(
                energy if isinstance(energy, EnergyLedger)
                else EnergyLedger())
            self.energy.obs = self
        self.journeys = None
        if journeys:
            # Imported lazily: the tracker pulls in the netstack's
            # protocol helpers, which plain metric/profile users of this
            # module do not need.
            from repro.obs.spans import JourneyTracker
            self.journeys = JourneyTracker(self)
        #: Optional :class:`~repro.obs.blackbox.FlightRecorder`.  Pass
        #: ``flight=True`` for one with default ring depths, or an
        #: existing recorder instance.
        self.flight = None
        if flight:
            from repro.obs.blackbox import FlightRecorder
            self.flight = flight if isinstance(flight, FlightRecorder) \
                else FlightRecorder()
        #: name -> :class:`~repro.core.SnapProcessor`, filled by
        #: :meth:`register_processor`; lets the flight recorder and
        #: crash-bundle builder find core state by node name.
        self.processors = {}
        #: Optional :class:`~repro.obs.telemetry.TelemetryExporter`,
        #: set by the exporter itself when it attaches; lets the
        #: blackbox embed the live stream tail in crash bundles.
        self.telemetry = None

    def observe(self, target):
        """Attach this context to any instrumentable *target*.

        The target must implement ``attach_observability(obs)`` (the
        processor, node, and network simulator all do).  Returns the
        target for chaining.
        """
        target.attach_observability(self)
        return target

    def register_node(self, node):
        """Record a node's identity for journey reconstruction.

        Called by :meth:`SensorNode.attach_observability`; maps the
        node's radio to its id, name, and radio physics so the journey
        tracker can label spans and attribute per-hop energy.
        """
        if self.journeys is not None:
            self.journeys.register(node.node_id, node.name, node.radio.name,
                                   node.radio.config)
        if self.energy is not None:
            self.energy.register_node(node)

    def register_processor(self, processor):
        """Record a processor's identity (called by
        ``SnapProcessor.attach_observability``)."""
        self.processors[processor.name] = processor
        if self.flight is not None:
            self.flight.register_processor(processor)
        if self.energy is not None:
            self.energy.register_processor(processor)

    def program_loaded(self, node, text_words, data_words, imem_words,
                       dmem_words):
        """A linked program landed in a core's memories: surface IMEM and
        DMEM occupancy as gauges."""
        self.metrics.gauge(node + ".imem.occupancy_words").set(text_words)
        self.metrics.gauge(node + ".imem.occupancy_frac").set(
            text_words / imem_words if imem_words else 0.0)
        self.metrics.gauge(node + ".dmem.occupancy_words").set(data_words)
        self.metrics.gauge(node + ".dmem.occupancy_frac").set(
            data_words / dmem_words if dmem_words else 0.0)

    # -- processor hooks ------------------------------------------------------

    def instruction_retired(self, node, time, pc, instruction, handler,
                            energy, duration):
        self.metrics.counter(node + ".instructions").inc()
        self.bus.emit(InstructionRetired(
            time=time, node=node, pc=pc, mnemonic=instruction.text(),
            instr_class=instruction.spec.instr_class.value,
            handler=handler, energy=energy, duration=duration))
        if self.flight is not None:
            self.flight.record_instruction(node, time, pc, instruction,
                                           handler, energy)

    def handler_dispatch(self, node, time, event_name, handler, latency):
        self.metrics.counter(node + ".dispatches").inc()
        self.metrics.histogram(node + ".dispatch_latency").observe(latency)
        self.bus.emit(HandlerDispatch(
            time=time, node=node, event=event_name, handler=handler,
            latency=latency))
        if self.flight is not None:
            self.flight.record_event("dispatch", node, time, event_name)

    def sleep_enter(self, node, time):
        self.metrics.counter(node + ".sleeps").inc()
        self.bus.emit(SleepEnter(time=time, node=node))
        if self.flight is not None:
            self.flight.record_event("sleep", node, time)

    def wakeup(self, node, time, idle):
        self.metrics.counter(node + ".wakeups").inc()
        self.bus.emit(Wakeup(time=time, node=node, idle=idle))
        if self.flight is not None:
            self.flight.record_event("wakeup", node, time, idle)

    def energy_sample(self, node, time, energy, instructions):
        self.bus.emit(EnergySample(time=time, node=node, energy=energy,
                                   instructions=instructions))

    # -- event-queue hooks ----------------------------------------------------

    def event_enqueued(self, node, time, event_name, depth):
        self.metrics.counter(node + ".inserted").inc()
        self.metrics.gauge(node + ".depth").set(depth)
        self.bus.emit(EventEnqueued(time=time, node=node, event=event_name,
                                    depth=depth))
        if self.flight is not None:
            self.flight.record_event("eq.insert", node, time, event_name)

    def event_dropped(self, node, time, event_name):
        self.metrics.counter(node + ".dropped").inc()
        self.bus.emit(EventDropped(time=time, node=node, event=event_name))
        if self.flight is not None:
            self.flight.record_event("eq.drop", node, time, event_name)

    def queue_depth(self, node, depth):
        self.metrics.gauge(node + ".depth").set(depth)

    # -- message-coprocessor hooks --------------------------------------------

    def coproc_command(self, node, time, command, word):
        self.metrics.counter(node + ".commands").inc()
        self.bus.emit(CoprocessorCommand(time=time, node=node,
                                         command=command, word=word))
        if self.flight is not None:
            self.flight.record_event("mcp.command", node, time, command)

    # -- radio and channel hooks ----------------------------------------------

    def radio_tx(self, node, time, word, queue_depth):
        self.metrics.counter(node + ".tx_words").inc()
        self.metrics.gauge(node + ".tx_queue_depth").set(queue_depth)
        self.bus.emit(RadioTx(time=time, node=node, word=word))
        if self.flight is not None:
            self.flight.record_event("radio.tx", node, time, word)
        if self.journeys is not None:
            self.journeys.radio_tx(node, time, word)

    def radio_rx(self, node, time, word):
        self.metrics.counter(node + ".rx_words").inc()
        self.bus.emit(RadioRx(time=time, node=node, word=word))
        if self.flight is not None:
            self.flight.record_event("radio.rx", node, time, word)

    def radio_drop(self, node, time, word, reason):
        self.metrics.counter(node + ".dropped_words").inc()
        self.metrics.counter(node + ".dropped_words." + reason).inc()
        self.bus.emit(RadioDrop(time=time, node=node, word=word,
                                reason=reason))
        if self.flight is not None:
            self.flight.record_event("radio.drop", node, time, reason)

    def channel_word(self):
        self.metrics.counter("channel.words_carried").inc()

    def channel_collision(self):
        self.metrics.counter("channel.collisions").inc()

    def channel_noise(self):
        self.metrics.counter("channel.noise_corruptions").inc()

    def channel_delivery(self, sender, receiver, time, word, outcome):
        """The channel resolved one word at one receiver (*outcome* is
        ``ok``, ``flipped``, ``collision``, ``noise``, or
        ``not_listening``).  Feeds journey reconstruction only."""
        if self.journeys is not None:
            self.journeys.channel_delivery(sender, receiver, time, word,
                                           outcome)

    def channel_word_done(self, sender, time):
        """The channel finished fanning one of *sender*'s words out to
        every in-range receiver."""
        if self.journeys is not None:
            self.journeys.word_done(sender, time)

    # -- journey and timeline events ------------------------------------------

    def packet_span(self, span):
        """Emit one reconstructed journey span (see
        :mod:`repro.obs.spans`) onto the bus."""
        self.bus.emit(PacketSpan(
            time=span.time, node=span.node, journey=span.journey,
            span=span.span, parent=span.parent, op=span.op, pkt=span.pkt,
            src=span.src, dst=span.dst, seq=span.seq, words=span.words,
            duration=span.duration, energy=span.energy, reason=span.reason))

    def timeline_sample(self, node, time, energy, cpu_energy, radio_energy,
                        radio_mode, duty_tx, duty_rx, queue_depth,
                        instructions):
        self.metrics.gauge(node + ".timeline.energy_j").set(energy)
        self.bus.emit(TimelineSample(
            time=time, node=node, energy=energy, cpu_energy=cpu_energy,
            radio_energy=radio_energy, radio_mode=radio_mode,
            duty_tx=duty_tx, duty_rx=duty_rx, queue_depth=queue_depth,
            instructions=instructions))
