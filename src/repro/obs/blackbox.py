"""Always-on flight recorder and the crash-capture facade.

Hardware sensor nodes ship with a tiny "black box": a bounded trace of
the last things the processor did, cheap enough to leave enabled in the
field.  This module reproduces that for the simulator:

* :class:`FlightRecorder` -- per-node ring buffers of the last N retired
  instructions (pc, decoded instruction, handler tag, energy, written
  register) plus a shared ring of recent system events (dispatches,
  sleeps, wakeups, event-queue inserts/drops, coprocessor commands,
  radio words).  Fed by the :class:`~repro.obs.Observability` hook
  funnel, including the fast-path burst loop; costs nothing while a
  node sleeps because no hooks fire.
* :class:`Blackbox` -- bundles an observability context (with the
  recorder enabled), a :class:`~repro.obs.watchdog.Watchdog`, and the
  crash-bundle writer: ``run()`` drives any target (processor, node, or
  network simulator) and, on a guest fault, invariant violation, or
  host exception escaping the kernel, writes a post-mortem bundle (see
  :mod:`repro.obs.postmortem`) before re-raising.

Recording never mutates simulation state -- registers and memories are
read through their counter-free ``peek`` paths -- so meter digests are
bit-identical with the recorder enabled (``tests/test_obs_budget.py``).
"""

import sys
from collections import deque

from repro.obs.context import Observability
from repro.obs.postmortem import build_crash_bundle, write_bundle
from repro.obs.watchdog import Watchdog

#: Default ring depths: enough tail to see the faulting handler's whole
#: body without holding more than a few KB per node.
DEFAULT_INSTRUCTION_LIMIT = 64
DEFAULT_EVENT_LIMIT = 64


class FlightRecorder:
    """Bounded rings of recent instructions and system events."""

    def __init__(self, instruction_limit=DEFAULT_INSTRUCTION_LIMIT,
                 event_limit=DEFAULT_EVENT_LIMIT):
        if instruction_limit <= 0 or event_limit <= 0:
            raise ValueError("flight-recorder ring limits must be positive")
        self.instruction_limit = instruction_limit
        self.event_limit = event_limit
        #: node name -> deque of (time, pc, instruction, handler, energy,
        #: rd, rd_value) tuples, newest last.
        self._instructions = {}
        #: Shared ring of (time, node, kind, detail) tuples, newest last.
        self._events = deque(maxlen=event_limit)
        #: node name -> processor, so instruction records can capture the
        #: value the instruction just wrote to its destination register.
        self._processors = {}

    # -- feeding (called through the Observability hook funnel) ---------------

    def register_processor(self, processor):
        """Remember a processor so its register file can be peeked."""
        self._processors[processor.name] = processor

    def record_instruction(self, node, time, pc, instruction, handler,
                           energy):
        """Append one retired instruction to *node*'s ring.

        Called after the executor ran, so peeking the destination
        register yields the value the instruction produced.
        """
        ring = self._instructions.get(node)
        if ring is None:
            ring = self._instructions[node] = deque(
                maxlen=self.instruction_limit)
        rd = rd_value = None
        spec = instruction.spec
        if spec.writes_rd:
            rd = instruction.rd
            if rd is not None and rd < 15:
                processor = self._processors.get(node)
                if processor is not None:
                    rd_value = processor.regs.peek(rd)
        ring.append((time, pc, instruction, handler, energy, rd, rd_value))

    def record_event(self, kind, node, time, detail=None):
        """Append one system event to the shared event ring."""
        self._events.append((time, node, kind, detail))

    # -- inspection ------------------------------------------------------------

    @property
    def nodes(self):
        """Names of every node with recorded instructions."""
        return sorted(self._instructions)

    def instruction_tail(self, node):
        """The recorded instruction tuples for *node*, oldest first."""
        return list(self._instructions.get(node, ()))

    def event_tail(self):
        """The recorded event tuples, oldest first."""
        return list(self._events)

    def entry_count(self):
        """Total entries currently held across every ring."""
        return (sum(len(ring) for ring in self._instructions.values())
                + len(self._events))

    def max_entries(self, node_count=None):
        """The hard entry ceiling for *node_count* nodes (defaults to the
        nodes seen so far)."""
        if node_count is None:
            node_count = max(1, len(self._instructions))
        return node_count * self.instruction_limit + self.event_limit

    def approx_size_bytes(self):
        """Rough host-memory footprint of the ring contents.

        Sums ``sys.getsizeof`` over the entry tuples; the budget property
        test bounds this to show the recorder cannot grow without limit.
        """
        total = sum(sys.getsizeof(entry)
                    for ring in self._instructions.values()
                    for entry in ring)
        total += sum(sys.getsizeof(entry) for entry in self._events)
        return total

    def snapshot(self, node=None, programs=None):
        """A JSON-able dict of the rings (for bundles and debugging).

        *programs* optionally maps node name -> linked
        :class:`~repro.asm.Program`; when a program is known, each
        instruction record gains its symbolicated source location.
        """
        programs = programs or {}
        names = [node] if node is not None else self.nodes
        instructions = {}
        for name in names:
            program = programs.get(name)
            instructions[name] = [
                self._describe_instruction(entry, program)
                for entry in self._instructions.get(name, ())]
        events = [{"time": time, "node": name, "kind": kind,
                   "detail": detail}
                  for time, name, kind, detail in self._events]
        return {
            "instruction_limit": self.instruction_limit,
            "event_limit": self.event_limit,
            "instructions": instructions,
            "events": events,
        }

    @staticmethod
    def _describe_instruction(entry, program):
        time, pc, instruction, handler, energy, rd, rd_value = entry
        record = {
            "time": time,
            "pc": pc,
            "mnemonic": instruction.text(),
            "class": instruction.spec.instr_class.value,
            "handler": handler,
            "energy": energy,
        }
        if rd is not None:
            record["rd"] = rd
            record["rd_value"] = rd_value
        if program is not None:
            loc = program.lookup(pc)
            record["source"] = {"function": loc.function, "file": loc.file,
                                "line": loc.line}
        return record


class Blackbox:
    """Flight recorder + watchdog + crash bundle, as one facade.

    Typical use::

        box = Blackbox()
        box.observe(node)           # or processor, or NetworkSimulator
        box.run(node, until=1.0)    # writes a bundle if anything faults

    ``observe`` may be called once per target (several nodes of one
    network are covered by observing the simulator itself).  ``run``
    arms the watchdog, drives the target, and on any escaping
    exception -- guest fault, :class:`InvariantViolation`, or a host
    bug inside the kernel -- builds a crash bundle, writes it under
    *bundle_dir* (unless ``None``), attaches it to the exception as
    ``crash_bundle`` / ``crash_bundle_paths``, and re-raises.
    """

    def __init__(self, obs=None, instruction_limit=DEFAULT_INSTRUCTION_LIMIT,
                 event_limit=DEFAULT_EVENT_LIMIT, watchdog_interval=1e-3,
                 invariants=None, bundle_dir="crash-bundles",
                 checkpoint_every=None):
        if obs is None:
            obs = Observability(
                flight=FlightRecorder(instruction_limit, event_limit))
        elif obs.flight is None:
            obs.flight = FlightRecorder(instruction_limit, event_limit)
        self.obs = obs
        self.recorder = obs.flight
        self.watchdog = Watchdog(interval=watchdog_interval,
                                 invariants=invariants,
                                 recorder=self.recorder)
        self.bundle_dir = bundle_dir
        #: node name -> linked Program, for symbolication.
        self.programs = {}
        self.last_bundle = None
        self.last_bundle_paths = None
        #: With *checkpoint_every* set (simulated seconds), the blackbox
        #: snapshots the observed node/network on that period via
        #: :mod:`repro.sim.checkpoint` and embeds the most recent
        #: snapshot in any crash bundle it writes -- ``snap-flight
        #: replay-tail --replay`` then reproduces the crash by re-running
        #: only the tail from that snapshot instead of from t=0.
        self.checkpoint_every = checkpoint_every
        self.last_checkpoint = None
        self._checkpoint_target = None
        self._checkpoint_armed = False

    def observe(self, target, program=None):
        """Instrument *target* and register it with the watchdog.

        *program* overrides the symbolication program for the target's
        processor(s); by default each processor's own loaded
        ``program`` attribute is used.
        """
        from repro.network.simulator import NetworkSimulator
        from repro.node.node import SensorNode

        self.obs.observe(target)
        for processor in self.watchdog.watch(target):
            loaded = program if program is not None \
                else getattr(processor, "program", None)
            if loaded is not None:
                self.programs[processor.name] = loaded
        if not self.watchdog.armed:
            self.watchdog.start()
        if isinstance(target, (NetworkSimulator, SensorNode)):
            self._checkpoint_target = target
            if self.checkpoint_every and not self._checkpoint_armed:
                self._checkpoint_armed = True
                target.kernel.schedule(self.checkpoint_every,
                                       self._checkpoint_tick)
        return target

    def _checkpoint_tick(self):
        """Periodic checkpoint of the observed target (kernel callback).

        Uses the ``unknown="skip"`` capture policy: host-side hooks on
        the heap (this tick itself, watchdog ticks, failure-injection
        lambdas in tests) are recorded as skipped, not fatal.
        """
        from repro.sim.checkpoint import capture

        self.last_checkpoint = capture(self._checkpoint_target,
                                       unknown="skip")
        self._checkpoint_target.kernel.schedule(self.checkpoint_every,
                                                self._checkpoint_tick)

    def run(self, target, until=None, max_events=None):
        """Drive ``target.run``, capturing a crash bundle on any fault."""
        if not self.watchdog.armed:
            self.watchdog.start()
        try:
            return target.run(until=until, max_events=max_events)
        except Exception as error:
            self.capture(error)
            error.crash_bundle = self.last_bundle
            error.crash_bundle_paths = self.last_bundle_paths
            raise

    def capture(self, error=None, reason=None):
        """Build (and, if *bundle_dir* is set, write) a crash bundle from
        the current simulation state.  Returns the bundle dict."""
        bundle = build_crash_bundle(
            error=error, reason=reason, kernel=self.watchdog.kernel,
            processors=self.watchdog.processors, recorder=self.recorder,
            programs=self.programs, obs=self.obs,
            checkpoint=self.last_checkpoint.data
            if self.last_checkpoint is not None else None)
        self.last_bundle = bundle
        self.last_bundle_paths = None
        if self.bundle_dir is not None:
            self.last_bundle_paths = write_bundle(bundle, self.bundle_dir)
            bundle["paths"] = [str(path) for path in self.last_bundle_paths]
        return bundle
