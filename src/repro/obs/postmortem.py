"""Crash-bundle construction and rendering.

When a simulation dies -- a guest program faults, a watchdog invariant
trips, or a host exception escapes the kernel -- the
:class:`~repro.obs.blackbox.Blackbox` facade calls
:func:`build_crash_bundle` to freeze everything a post-mortem needs into
one JSON-able dict, then :func:`write_bundle` to drop it on disk as
``<stem>.json`` (machine-readable) plus ``<stem>.md`` (human-readable).

Bundle schema (``repro.obs.crash-bundle/1``):

* ``reason`` -- ``guest_fault`` | ``invariant_violation`` |
  ``host_exception`` | ``manual``;
* ``error`` -- exception type/message (plus the invariant name and node
  for watchdog trips);
* ``time_s`` / ``wall_time`` -- simulation clock and host timestamp;
* ``nodes`` -- per-processor state: mode, pc (symbolicated when the
  program is known), registers, carry, meter summary, pending
  event-queue tokens, low DMEM, and a stack window around ``sp``;
* ``pending_events`` -- the kernel's live callbacks;
* ``disassembly`` -- the flight recorder's instruction tail per node,
  each entry carrying the retired pc, mnemonic, handler tag, energy,
  register write, and C source location;
* ``events_tail`` -- the flight recorder's recent system events;
* ``journeys`` -- in-flight/recent packet journeys when a journey
  tracker was attached;
* ``telemetry`` (optional) -- the streaming telemetry exporter's recent
  record tail and delivery counters, when a
  :class:`~repro.obs.telemetry.TelemetryExporter` was armed: the last
  thing every attached dashboard saw before the crash;
* ``checkpoint`` (optional) -- the blackbox's most recent periodic
  :mod:`repro.sim.checkpoint` snapshot, so ``snap-flight replay-tail
  --replay`` can restore and re-run only the tail up to the crash.

The ``snap-flight`` CLI (:mod:`repro.tools.snap_flight`) renders and
replays these bundles; ``tests/goldens/crash_bundle.json`` pins the
schema (normalized by :func:`normalize_bundle`).
"""

import datetime
import json
import os

from repro.core.exceptions import SimulationError
from repro.isa.registers import register_name

SCHEMA = "repro.obs.crash-bundle/1"

#: Words of DMEM captured from address 0 (the netstack's counter cells
#: and scratch words all live below this).
LOW_DMEM_WORDS = 32
#: Words captured around the stack pointer.
STACK_WINDOW_WORDS = 16

REG_SP = 13


def classify_error(error):
    """Map an exception to the bundle ``reason`` field."""
    from repro.obs.watchdog import InvariantViolation
    if error is None:
        return "manual"
    if isinstance(error, InvariantViolation):
        return "invariant_violation"
    if isinstance(error, SimulationError):
        return "guest_fault"
    return "host_exception"


def build_crash_bundle(error=None, reason=None, kernel=None, processors=(),
                       recorder=None, programs=None, obs=None,
                       checkpoint=None):
    """Freeze the current simulation state into a crash-bundle dict.

    *checkpoint* optionally embeds the blackbox's most recent periodic
    :mod:`repro.sim.checkpoint` snapshot (the raw schema dict);
    ``snap-flight replay-tail --replay`` restores it and re-runs only
    the tail up to the crash instead of replaying from t=0.
    """
    from repro.obs.watchdog import InvariantViolation
    programs = programs or {}
    bundle = {
        "schema": SCHEMA,
        "reason": reason or classify_error(error),
        "time_s": kernel.now if kernel is not None else None,
        "wall_time": datetime.datetime.now(
            datetime.timezone.utc).isoformat(),
    }
    if error is not None:
        bundle["error"] = {
            "type": type(error).__name__,
            "message": str(error),
        }
        if isinstance(error, InvariantViolation):
            bundle["error"]["invariant"] = error.invariant
            bundle["error"]["node"] = error.node
    bundle["nodes"] = {
        processor.name: _processor_state(processor,
                                         programs.get(processor.name))
        for processor in processors}
    if kernel is not None:
        bundle["pending_events"] = _pending_events(kernel)
    if recorder is not None:
        tail = recorder.snapshot(programs=programs)
        bundle["disassembly"] = tail["instructions"]
        bundle["events_tail"] = tail["events"]
    if obs is not None and getattr(obs, "journeys", None) is not None:
        bundle["journeys"] = [journey.summary()
                              for journey in obs.journeys.journeys[-8:]]
    if obs is not None and getattr(obs, "telemetry", None) is not None:
        bundle["telemetry"] = obs.telemetry.tail_snapshot()
    if checkpoint is not None:
        bundle["checkpoint"] = checkpoint
    return bundle


def _processor_state(processor, program):
    regs = {register_name(index): processor.regs.peek(index)
            for index in range(15)}
    meter = processor.meter
    state = {
        "mode": processor.mode.value,
        "pc": processor.pc,
        "handler": processor.current_tag,
        "registers": regs,
        "carry": processor.carry,
        "meter": {
            "instructions": meter.instructions,
            "cycles": meter.cycles,
            "total_energy_j": meter.total_energy,
            "busy_s": meter.busy_time,
            "idle_s": meter.idle_time,
            "wakeups": meter.wakeups,
            "event_tokens": meter.event_tokens,
        },
        "event_queue": [{"event": token.event.name,
                         "raised_at": token.raised_at}
                        for token in processor.event_queue.tokens()],
        "dmem_low": processor.dmem.dump(0, LOW_DMEM_WORDS),
    }
    sp = processor.regs.peek(REG_SP)
    if 0 < sp <= processor.dmem.size_words:
        count = min(STACK_WINDOW_WORDS, processor.dmem.size_words - sp)
        state["stack_window"] = {"base": sp,
                                 "words": processor.dmem.dump(sp, count)}
    if program is not None:
        loc = program.lookup(processor.pc)
        state["pc_source"] = {"function": loc.function, "file": loc.file,
                              "line": loc.line}
    return state


def _pending_events(kernel):
    events = []
    for entry in sorted(kernel._queue):
        if entry[2] is None:
            continue
        callback = entry[2]
        events.append({
            "time": entry[0],
            "callback": getattr(callback, "__qualname__",
                                repr(callback)),
        })
    return events


# -- rendering ---------------------------------------------------------------


def _format_source(source):
    if not source or source.get("file") is None:
        return ""
    where = "%s:%s" % (source["file"], source["line"])
    if source.get("function"):
        where = "%s (%s)" % (where, source["function"])
    return where


def render_markdown(bundle):
    """Render a crash bundle as a Markdown report."""
    lines = ["# Crash bundle", ""]
    lines.append("* reason: `%s`" % bundle.get("reason"))
    error = bundle.get("error")
    if error:
        lines.append("* error: `%s`: %s"
                     % (error.get("type"), error.get("message")))
        if error.get("invariant"):
            lines.append("* invariant: `%s`" % error["invariant"])
    if bundle.get("time_s") is not None:
        lines.append("* simulated time: %.9f s" % bundle["time_s"])
    lines.append("* captured: %s" % bundle.get("wall_time"))
    for name, state in sorted((bundle.get("nodes") or {}).items()):
        lines += ["", "## %s" % name, ""]
        pc_where = _format_source(state.get("pc_source"))
        lines.append("* mode `%s`, pc `0x%04x`%s, handler `%s`"
                     % (state["mode"], state["pc"],
                        " at %s" % pc_where if pc_where else "",
                        state.get("handler")))
        meter = state.get("meter", {})
        lines.append("* %d instructions, %.3f nJ, %d wakeups"
                     % (meter.get("instructions", 0),
                        meter.get("total_energy_j", 0.0) * 1e9,
                        meter.get("wakeups", 0)))
        regs = state.get("registers", {})
        lines.append("* regs: " + " ".join(
            "%s=%04x" % (reg, value) for reg, value in sorted(
                regs.items(), key=lambda kv: int(kv[0][1:])
                if kv[0][1:].isdigit() else 99)))
        tokens = state.get("event_queue") or []
        if tokens:
            lines.append("* pending tokens: " + ", ".join(
                token["event"] for token in tokens))
        tail = (bundle.get("disassembly") or {}).get(name) or []
        if tail:
            lines += ["", "### Last %d instructions" % len(tail), "",
                      "| time (s) | pc | instruction | handler | source |",
                      "|---|---|---|---|---|"]
            for record in tail:
                lines.append("| %.9f | 0x%04x | `%s` | %s | %s |" % (
                    record["time"], record["pc"], record["mnemonic"],
                    record["handler"],
                    _format_source(record.get("source"))))
    events = bundle.get("events_tail") or []
    if events:
        lines += ["", "## Recent events", ""]
        for event in events:
            detail = event.get("detail")
            lines.append("* %.9f s `%s` %s%s"
                         % (event["time"], event["kind"], event["node"],
                            " -- %s" % (detail,) if detail is not None
                            else ""))
    pending = bundle.get("pending_events") or []
    if pending:
        lines += ["", "## Pending kernel events", ""]
        for event in pending:
            lines.append("* %.9f s -> `%s`"
                         % (event["time"], event["callback"]))
    journeys = bundle.get("journeys") or []
    if journeys:
        lines += ["", "## Packet journeys", ""]
        for journey in journeys:
            lines.append("* %s" % json.dumps(journey, default=str))
    lines.append("")
    return "\n".join(lines)


def write_bundle(bundle, directory, stem="crash"):
    """Write ``<stem>.json`` and ``<stem>.md`` under *directory*.

    Returns ``(json_path, md_path)``.  The directory is created if
    missing; an existing bundle with the same stem is overwritten.
    """
    os.makedirs(directory, exist_ok=True)
    json_path = os.path.join(directory, stem + ".json")
    md_path = os.path.join(directory, stem + ".md")
    with open(json_path, "w") as handle:
        json.dump(bundle, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    with open(md_path, "w") as handle:
        handle.write(render_markdown(bundle))
    return json_path, md_path


def normalize_bundle(bundle):
    """A copy of *bundle* with host-volatile fields pinned, for goldens.

    Wall-clock timestamps and on-disk paths vary run to run; everything
    else in a bundle is a pure function of the (deterministic)
    simulation.
    """
    normalized = json.loads(json.dumps(bundle, sort_keys=True, default=str))
    normalized["wall_time"] = "1970-01-01T00:00:00+00:00"
    normalized.pop("paths", None)
    return normalized
