"""Typed trace events carried by the :class:`~repro.obs.bus.TraceBus`.

Every observable occurrence in the simulated system -- an instruction
retiring, an event-queue dispatch, a coprocessor command, a radio word on
the air, an energy sample -- is one frozen dataclass instance.  Events
carry the simulation *time* (seconds) and the *node* (component name,
e.g. ``node0.cpu``) they originated from, plus kind-specific fields.

The ``kind`` class attribute is the stable wire name used by the JSONL
and Chrome-trace exporters and by the golden-trace regression tests; do
not rename kinds without regenerating the goldens under
``tests/goldens/``.
"""

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class TraceEvent:
    """Base class: when and where the event happened."""

    kind = "event"

    time: float
    node: str

    def to_record(self):
        """A flat JSON-serializable dict (``type`` + every field)."""
        record = {"type": self.kind}
        for field in fields(self):
            record[field.name] = getattr(self, field.name)
        return record


@dataclass(frozen=True)
class InstructionRetired(TraceEvent):
    """One instruction completed on a SNAP/LE core."""

    kind = "instruction"

    pc: int
    mnemonic: str
    instr_class: str
    handler: str
    energy: float
    duration: float


@dataclass(frozen=True)
class HandlerDispatch(TraceEvent):
    """The core popped an event token and jumped to its handler."""

    kind = "dispatch"

    event: str
    handler: str
    latency: float


@dataclass(frozen=True)
class SleepEnter(TraceEvent):
    """The core found the event queue empty and went to sleep."""

    kind = "sleep"


@dataclass(frozen=True)
class Wakeup(TraceEvent):
    """An event token woke the sleeping core."""

    kind = "wakeup"

    idle: float


@dataclass(frozen=True)
class EventEnqueued(TraceEvent):
    """A token entered the hardware event queue."""

    kind = "enqueue"

    event: str
    depth: int


@dataclass(frozen=True)
class EventDropped(TraceEvent):
    """A token arrived at a full event queue and was dropped."""

    kind = "drop"

    event: str


@dataclass(frozen=True)
class CoprocessorCommand(TraceEvent):
    """The core pushed a command word to the message coprocessor."""

    kind = "command"

    command: str
    word: int


@dataclass(frozen=True)
class RadioTx(TraceEvent):
    """A radio finished serializing one 16-bit word onto the air."""

    kind = "radio_tx"

    word: int


@dataclass(frozen=True)
class RadioRx(TraceEvent):
    """A radio received one clean 16-bit word."""

    kind = "radio_rx"

    word: int


@dataclass(frozen=True)
class RadioDrop(TraceEvent):
    """A word reached a radio but was not delivered."""

    kind = "radio_drop"

    word: int
    reason: str


@dataclass(frozen=True)
class EnergySample(TraceEvent):
    """A point-in-time snapshot of a core's cumulative energy."""

    kind = "energy"

    energy: float
    instructions: int


@dataclass(frozen=True)
class PacketSpan(TraceEvent):
    """One span of a packet journey (see :mod:`repro.obs.spans`).

    Spans are linked into per-journey trees: *journey* identifies the
    end-to-end packet flow, *span* this node of the tree, and *parent*
    the span it hangs under (``None`` for a journey root).  *op* is one
    of ``send``, ``forward``, ``air``, ``receive``, ``overhear``,
    ``deliver``, or ``drop``; *reason* is set only for drops.
    """

    kind = "span"

    journey: int
    span: int
    parent: "int | None"
    op: str
    pkt: str
    src: int
    dst: int
    seq: int
    words: int
    duration: float
    energy: float
    reason: "str | None"


@dataclass(frozen=True)
class TimelineSample(TraceEvent):
    """One node's slice of an aligned network energy timeline.

    Emitted by the :class:`~repro.obs.timeline.TimelineSampler` for
    every node at every sampling tick: cumulative energies (joules),
    the radio's duty-cycle state, and the event-queue depth.
    """

    kind = "timeline"

    energy: float
    cpu_energy: float
    radio_energy: float
    radio_mode: str
    duty_tx: float
    duty_rx: float
    queue_depth: int
    instructions: int


#: Every concrete event class, keyed by wire name.
EVENT_KINDS = {cls.kind: cls for cls in (
    InstructionRetired, HandlerDispatch, SleepEnter, Wakeup,
    EventEnqueued, EventDropped, CoprocessorCommand,
    RadioTx, RadioRx, RadioDrop, EnergySample,
    PacketSpan, TimelineSample)}
