"""Differential observability: divergence localization and cross-run
comparative analysis (``snap-diff``).

Every correctness gate in this repo ultimately asserts "two runs are
bit-identical" -- fast path vs reference engine (PR 4), resumed vs
uninterrupted (PR 6), armed vs unarmed observability (PR 7).  When that
assertion fails, a boolean is a terrible diagnostic.  This module turns
the same machinery into an analysis engine with two modes:

**First-divergence localization.**  :func:`align` walks two typed trace
streams event-by-event and returns the first mismatching record as a
:class:`Divergence` -- which field differed, the event times on both
sides, the owning node and handler, the program counter, and (when the
run carries a linked :class:`~repro.asm.Program`) the symbolicated
source location via ``Program.lookup``, plus a flight-recorder-style
tail of the last events leading up to the mismatch on both sides.  When
both runs support checkpointing, :class:`Bisector` first narrows the
divergence to a time window by binary-searching
:func:`~repro.sim.checkpoint.capture` snapshots (digest comparison per
probe, no observability overhead), then re-runs only the tail with the
trace bus attached to localize exactly.

**Cross-run comparison.**  Pointed at two *intentionally different*
runs (two supply voltages, two engines, two protocol variants),
:func:`compare` produces a structured report -- per-handler and per-PC
energy/time deltas, per-node instruction-class deltas, packet-journey
flow diffs (delivery, drop reasons, latency changes per flow), and
metrics-registry diffs -- rendered as JSON (schema ``repro.obs.diff/1``)
or Markdown.

Alignment modes
===============

* ``full`` -- records must match on every field, floats included.  Two
  runs of the same scenario under the bit-identity contract align with
  zero divergence; the first energy/timing difference is localized to
  the instruction that caused it.
* ``stable`` -- records are first reduced by
  :func:`repro.obs.project.project_event` to their float-free golden
  projection, so runs that legitimately differ in energy/timing (e.g.
  two voltages) align on structure and ordering alone.

Runs come from three places (:class:`RunCapture`): live simulators
(:func:`capture_run`), recorded JSONL trace streams
(:func:`load_trace`), or checkpoint files
(:func:`capture_from_checkpoint`).  The ``snap-diff`` CLI
(:mod:`repro.tools.snap_diff`) fronts all of this.
"""

from dataclasses import dataclass, replace

from repro.obs.bus import MemorySink, read_jsonl
from repro.obs.project import project_event

SCHEMA = "repro.obs.diff/1"

#: Default number of pre-divergence records kept per side in a
#: :class:`Divergence` tail (the flight-recorder convention).
DEFAULT_TAIL = 16

#: Default cap on per-PC delta rows in a comparison report.
DEFAULT_TOP = 20

ALIGN_MODES = ("full", "stable")


class DiffError(Exception):
    """A snap-diff input could not be understood or compared."""


# -- run captures -------------------------------------------------------------


@dataclass
class RunCapture:
    """One run, reduced to what the diff engine needs.

    *events* are plain ``to_record()`` dicts at full float precision;
    *digest* is the :func:`~repro.sim.checkpoint.network_digest` (live
    and checkpoint runs only); *programs* maps processor names to linked
    :class:`~repro.asm.Program` objects for symbolication; *metrics* is
    the observability registry snapshot.
    """

    label: str
    kind: str                 # "live" | "trace" | "checkpoint"
    events: list
    time_s: "float | None" = None
    digest: "dict | None" = None
    metrics: "dict | None" = None
    programs: "dict | None" = None

    def describe(self):
        return {"label": self.label, "kind": self.kind,
                "events": len(self.events), "time_s": self.time_s,
                "nodes": sorted({record.get("node")
                                 for record in self.events
                                 if record.get("node")})}


def _run_sim(sim, until):
    from repro.node.node import SensorNode

    if isinstance(sim, SensorNode):
        sim.kernel.run(until=until)
    else:
        sim.run(until=until)
    return sim


def _sim_programs(sim):
    from repro.node.node import SensorNode

    nodes = [sim] if isinstance(sim, SensorNode) else sim.nodes.values()
    return {node.processor.name: node.processor.program
            for node in nodes
            if getattr(node.processor, "program", None) is not None}


def capture_run(sim, horizon, label="run", journeys=True):
    """Drive a live *sim* to *horizon* under a fresh observability
    context and return its :class:`RunCapture`.

    The simulation must not already carry an observability context;
    attaching is bit-identity-preserving, so the captured digest equals
    an uninstrumented run's.
    """
    from repro.obs.context import Observability
    from repro.sim.checkpoint import network_digest

    obs = Observability(journeys=journeys)
    sink = obs.bus.attach(MemorySink())
    sim.attach_observability(obs)
    _run_sim(sim, horizon)
    if obs.journeys is not None:
        obs.journeys.flush()
    return RunCapture(
        label=label, kind="live", events=sink.records(),
        time_s=sim.kernel.now, digest=network_digest(sim),
        metrics=obs.metrics.snapshot(), programs=_sim_programs(sim))


def load_trace(path, label=None):
    """Load a recorded JSONL trace stream as a :class:`RunCapture`."""
    events = read_jsonl(path)
    time_s = None
    for record in reversed(events):
        if isinstance(record.get("time"), (int, float)):
            time_s = record["time"]
            break
    return RunCapture(label=label or path, kind="trace", events=events,
                      time_s=time_s)


def capture_from_checkpoint(source, horizon, label=None, journeys=True):
    """Restore a checkpoint (path, dict, or
    :class:`~repro.sim.checkpoint.Checkpoint`), re-run it to *horizon*
    under observability, and return the tail's :class:`RunCapture`."""
    from repro.sim.checkpoint import Checkpoint, restore

    if isinstance(source, str):
        checkpoint = Checkpoint.load(source)
        label = label or source
    elif isinstance(source, dict):
        checkpoint = Checkpoint(source)
    else:
        checkpoint = source
    if horizon is None or horizon <= checkpoint.time_s:
        raise DiffError(
            "checkpoint at t=%.6f s needs a later --until horizon to "
            "replay (got %r)" % (checkpoint.time_s, horizon))
    sim = restore(checkpoint)
    capture = capture_run(sim, horizon, label=label or "checkpoint",
                          journeys=journeys)
    return replace(capture, kind="checkpoint")


# -- deep dict diffs ----------------------------------------------------------


def deep_diff_paths(left, right, prefix=""):
    """Dotted paths at which two nested dicts differ, with both values.

    The shared implementation behind checkpoint digest diffs and the
    metrics/registry diff in comparison reports.
    """
    diffs = []
    if isinstance(left, dict) and isinstance(right, dict):
        for key in sorted(set(left) | set(right)):
            a, b = left.get(key), right.get(key)
            if a != b:
                diffs.extend(deep_diff_paths(a, b, "%s%s." % (prefix, key)))
        return diffs
    diffs.append("%s: %r != %r" % (prefix.rstrip("."), left, right))
    return diffs


# -- stream alignment and localization ----------------------------------------


@dataclass
class Divergence:
    """The first point at which two aligned streams disagree."""

    index: int
    mode: str
    kind: str                       # "event" | "length" | "digest_only"
    record_a: "dict | None"
    record_b: "dict | None"
    fields: list                    # differing field names ("event" kind)
    time_a: "float | None" = None
    time_b: "float | None" = None
    node: "str | None" = None
    handler: "str | None" = None
    pc: "int | None" = None
    mnemonic: "str | None" = None
    location: "dict | None" = None  # symbolicated {function, file, line}
    window: "dict | None" = None    # bisected time window, when known
    digest_paths: "list | None" = None
    tail_a: "list | None" = None
    tail_b: "list | None" = None

    def to_dict(self):
        return {
            "index": self.index, "mode": self.mode, "kind": self.kind,
            "record_a": self.record_a, "record_b": self.record_b,
            "fields": self.fields, "time_a": self.time_a,
            "time_b": self.time_b, "node": self.node,
            "handler": self.handler, "pc": self.pc,
            "mnemonic": self.mnemonic, "location": self.location,
            "window": self.window, "digest_paths": self.digest_paths,
            "tail_a": self.tail_a, "tail_b": self.tail_b,
        }

    def describe(self):
        """One-paragraph human rendering of the localization."""
        if self.kind == "digest_only":
            lines = ["streams aligned but state digests differ:"]
            lines.extend("  " + path for path in (self.digest_paths or [])[:10])
            return "\n".join(lines)
        where = "event #%d" % self.index
        if self.time_a is not None:
            where += " at t=%.9f s" % self.time_a
        if self.window:
            where += " (bisected window %s..%.9f s)" % (
                "%.9f" % self.window["t_lo"]
                if self.window.get("t_lo") is not None else "start",
                self.window["t_hi"])
        lines = ["first divergence: %s" % where]
        if self.kind == "length":
            short = "a" if self.record_a is None else "b"
            lines.append("  run %s ended early (%d events)"
                         % (short, self.index))
        context = []
        if self.node:
            context.append("node=%s" % self.node)
        if self.handler:
            context.append("handler=%s" % self.handler)
        if self.pc is not None:
            context.append("pc=0x%04x" % self.pc)
        if self.mnemonic:
            context.append("insn=%r" % self.mnemonic)
        if context:
            lines.append("  " + "  ".join(context))
        if self.location and (self.location.get("function")
                              or self.location.get("file")):
            loc = self.location
            lines.append("  source: %s at %s:%s"
                         % (loc.get("function") or "?",
                            loc.get("file") or "?", loc.get("line") or "?"))
        for name in self.fields or ():
            lines.append("  %s: %r != %r"
                         % (name,
                            (self.record_a or {}).get(name),
                            (self.record_b or {}).get(name)))
        return "\n".join(lines)


def _record_fields_diff(record_a, record_b):
    fields = sorted(set(record_a) | set(record_b))
    return [name for name in fields
            if record_a.get(name) != record_b.get(name)]


def align(events_a, events_b, mode="full"):
    """Walk two streams in lockstep; return the first
    :class:`Divergence`, or ``None`` when they agree end to end.

    ``full`` compares whole records (floats included); ``stable``
    compares the float-free golden projection.
    """
    if mode not in ALIGN_MODES:
        raise ValueError("mode must be one of %s, not %r"
                         % ("/".join(ALIGN_MODES), mode))
    view = (lambda record: record) if mode == "full" else project_event
    count = min(len(events_a), len(events_b))
    for index in range(count):
        record_a, record_b = events_a[index], events_b[index]
        if view(record_a) != view(record_b):
            return Divergence(
                index=index, mode=mode, kind="event",
                record_a=record_a, record_b=record_b,
                fields=_record_fields_diff(view(record_a), view(record_b)),
                time_a=record_a.get("time"), time_b=record_b.get("time"))
    if len(events_a) != len(events_b):
        longer = events_a if len(events_a) > len(events_b) else events_b
        extra = longer[count]
        return Divergence(
            index=count, mode=mode, kind="length",
            record_a=extra if longer is events_a else None,
            record_b=extra if longer is events_b else None,
            fields=[], time_a=extra.get("time"), time_b=extra.get("time"))
    return None


def _instruction_context(events, index):
    """The nearest instruction record at or before *index*: the
    (node, handler, pc, mnemonic) the divergence happened inside."""
    for position in range(min(index, len(events) - 1), -1, -1):
        record = events[position]
        if record.get("type") == "instruction":
            return (record.get("node"), record.get("handler"),
                    record.get("pc"), record.get("mnemonic"))
    return None, None, None, None


def _symbolicate(programs, node, pc):
    if not programs or node is None or pc is None:
        return None
    program = programs.get(node)
    if program is None:
        return None
    loc = program.lookup(pc)
    return {"function": loc.function, "file": loc.file, "line": loc.line}


def localize(divergence, run_a, run_b, tail=DEFAULT_TAIL):
    """Enrich an :func:`align` divergence with execution context:
    owning node/handler/pc (from the divergent record itself when it is
    an instruction, else the nearest preceding one), the symbolicated
    source location, and the last *tail* records from both sides."""
    if divergence is None:
        return None
    record = divergence.record_a or divergence.record_b or {}
    if record.get("type") == "instruction":
        divergence.node = record.get("node")
        divergence.handler = record.get("handler")
        divergence.pc = record.get("pc")
        divergence.mnemonic = record.get("mnemonic")
    else:
        events = run_a.events if divergence.record_a is not None \
            else run_b.events
        node, handler, pc, mnemonic = _instruction_context(
            events, divergence.index)
        divergence.node = record.get("node", node) if record else node
        divergence.handler = handler
        divergence.pc = pc
        divergence.mnemonic = mnemonic
    programs = dict(run_b.programs or {})
    programs.update(run_a.programs or {})
    divergence.location = _symbolicate(programs, divergence.node,
                                       divergence.pc)
    if tail:
        lo = max(0, divergence.index - tail + 1)
        hi = divergence.index + 1
        divergence.tail_a = run_a.events[lo:hi]
        divergence.tail_b = run_b.events[lo:hi]
    return divergence


def first_divergence(run_a, run_b, mode="full", tail=DEFAULT_TAIL):
    """The localized first divergence between two captures, or ``None``.

    Falls back to a ``digest_only`` divergence when the streams agree
    but the captured state digests do not (a meter-accumulator bug that
    never surfaced as a trace event).
    """
    divergence = localize(align(run_a.events, run_b.events, mode=mode),
                          run_a, run_b, tail=tail)
    if divergence is not None:
        return divergence
    if (mode == "full" and run_a.digest is not None
            and run_b.digest is not None and run_a.digest != run_b.digest):
        return Divergence(
            index=len(run_a.events), mode=mode, kind="digest_only",
            record_a=None, record_b=None, fields=[],
            digest_paths=deep_diff_paths(run_a.digest, run_b.digest))
    return None


# -- checkpoint bisection -----------------------------------------------------


class Bisector:
    """Pin a divergence to a time window by bisecting over checkpoints.

    *make_a* / *make_b* are builders returning ``(sim, horizon)`` with
    the simulation clock at the end of any staged prologue (the
    :mod:`repro.sim.differential` scenario convention).  Each probe
    restores the latest known-good checkpoint, advances to the probe
    time, captures, and compares
    :func:`~repro.sim.checkpoint.network_digest` -- no observability is
    attached during bisection, so probes are cheap and digest-exact.

    Because both runs are deterministic, digest divergence is monotone
    in time: once the states differ they stay different.  The loop
    therefore maintains the invariant *digests equal at* ``t_lo`` (or at
    the prologue end when ``t_lo`` is ``None``), *digests differ at*
    ``t_hi``, and halves the window up to *max_probes* times.
    """

    def __init__(self, make_a, make_b, max_probes=20):
        self.make_a = make_a
        self.make_b = make_b
        self.max_probes = max_probes

    def _fresh(self):
        sim_a, horizon_a = self.make_a()
        sim_b, horizon_b = self.make_b()
        return sim_a, sim_b, min(horizon_a, horizon_b)

    @staticmethod
    def _advance(checkpoint, t):
        from repro.sim.checkpoint import capture, network_digest, restore

        sim = restore(checkpoint)
        _run_sim(sim, t)
        return capture(sim, unknown="skip"), network_digest(sim)

    def bisect(self):
        """Narrow the window; returns ``None`` when the runs never
        diverge by the horizon, else ``{"t_lo", "t_hi", "probes",
        "digest_paths", "checkpoints"}`` (the checkpoints are the last
        digest-equal pair, for tail re-runs)."""
        from repro.sim.checkpoint import capture, network_digest

        sim_a, sim_b, horizon = self._fresh()
        start = max(sim_a.kernel.now, sim_b.kernel.now)
        ckpt_a = capture(sim_a, unknown="skip")
        ckpt_b = capture(sim_b, unknown="skip")
        _run_sim(sim_a, horizon)
        _run_sim(sim_b, horizon)
        digest_a, digest_b = network_digest(sim_a), network_digest(sim_b)
        if digest_a == digest_b:
            return None

        if network_digest(ckpt_a.restore()) != \
                network_digest(ckpt_b.restore()):
            # Diverged during the staged prologue; nothing to bisect.
            return {"t_lo": None, "t_hi": start, "probes": 0,
                    "digest_paths": deep_diff_paths(digest_a, digest_b),
                    "checkpoints": None}

        t_lo, t_hi = start, horizon
        probes = 0
        while probes < self.max_probes:
            mid = (t_lo + t_hi) / 2.0
            if not t_lo < mid < t_hi:
                break
            probes += 1
            probe_a, dig_a = self._advance(ckpt_a, mid)
            probe_b, dig_b = self._advance(ckpt_b, mid)
            if dig_a == dig_b:
                t_lo, ckpt_a, ckpt_b = mid, probe_a, probe_b
            else:
                t_hi = mid
        return {"t_lo": t_lo, "t_hi": t_hi, "probes": probes,
                "digest_paths": deep_diff_paths(digest_a, digest_b),
                "checkpoints": (ckpt_a, ckpt_b)}

    def localize(self, window=None, mode="full", tail=DEFAULT_TAIL,
                 label_a="a", label_b="b"):
        """Re-run only the bisected tail with observability attached and
        localize the first divergent record inside the window.

        Returns ``(divergence, run_a, run_b)``; the runs cover the
        window tail only, so their aggregates feed a comparison report
        scoped to where the behavior actually changed.
        """
        if window is None:
            window = self.bisect()
        if window is None:
            return None, None, None
        # Restored simulators carry raw instruction memory but not the
        # linked Program object; harvest symbolication tables from a
        # fresh build of each side.
        fresh_a, fresh_b, horizon = self._fresh()
        programs_a, programs_b = _sim_programs(fresh_a), _sim_programs(fresh_b)
        checkpoints = window.get("checkpoints")
        if checkpoints is not None:
            sim_a = checkpoints[0].restore()
            sim_b = checkpoints[1].restore()
        else:
            sim_a, sim_b = fresh_a, fresh_b
        run_a = capture_run(sim_a, horizon, label=label_a)
        run_b = capture_run(sim_b, horizon, label=label_b)
        run_a.programs = dict(programs_a, **(run_a.programs or {}))
        run_b.programs = dict(programs_b, **(run_b.programs or {}))
        divergence = first_divergence(run_a, run_b, mode=mode, tail=tail)
        if divergence is not None:
            divergence.window = {"t_lo": window["t_lo"],
                                 "t_hi": window["t_hi"],
                                 "probes": window["probes"]}
            if divergence.kind == "digest_only":
                divergence.digest_paths = window["digest_paths"]
        return divergence, run_a, run_b


# -- cross-run aggregation ----------------------------------------------------


def aggregate_handlers(events):
    """Per ``(node, handler)`` cost from instruction/dispatch records."""
    table = {}

    def cell(node, handler):
        key = (node, handler)
        entry = table.get(key)
        if entry is None:
            entry = table[key] = {"instructions": 0, "energy": 0.0,
                                  "time": 0.0, "invocations": 0}
        return entry

    for record in events:
        kind = record.get("type")
        if kind == "instruction":
            entry = cell(record["node"], record["handler"])
            entry["instructions"] += 1
            entry["energy"] += record.get("energy") or 0.0
            entry["time"] += record.get("duration") or 0.0
        elif kind == "dispatch":
            cell(record["node"], record["handler"])["invocations"] += 1
    return table


def aggregate_pcs(events):
    """Per ``(node, pc)`` cost from instruction records."""
    table = {}
    for record in events:
        if record.get("type") != "instruction":
            continue
        key = (record["node"], record["pc"])
        entry = table.get(key)
        if entry is None:
            entry = table[key] = {"count": 0, "energy": 0.0, "time": 0.0,
                                  "mnemonic": record.get("mnemonic", "")}
        entry["count"] += 1
        entry["energy"] += record.get("energy") or 0.0
        entry["time"] += record.get("duration") or 0.0
    return table


def aggregate_classes(events):
    """Per ``(node, instruction-class)`` count/energy."""
    table = {}
    for record in events:
        if record.get("type") != "instruction":
            continue
        key = (record["node"], record.get("instr_class") or "?")
        entry = table.get(key)
        if entry is None:
            entry = table[key] = {"count": 0, "energy": 0.0}
        entry["count"] += 1
        entry["energy"] += record.get("energy") or 0.0
    return table


def aggregate_layers(events, programs=None):
    """Per ``(node, protocol-layer)`` cost from instruction records.

    Layers come from the netstack layout's maps: the symbolicated
    function prefix when *programs* carry a line table for the pc,
    the handler tag's default otherwise.
    """
    from repro.netstack.layout import function_layer

    table = {}
    for record in events:
        if record.get("type") != "instruction":
            continue
        node = record["node"]
        location = _symbolicate(programs or {}, node, record.get("pc"))
        function = location.get("function") if location else None
        layer = function_layer(function, record.get("handler"))
        key = (node, layer)
        entry = table.get(key)
        if entry is None:
            entry = table[key] = {"count": 0, "energy": 0.0, "time": 0.0}
        entry["count"] += 1
        entry["energy"] += record.get("energy") or 0.0
        entry["time"] += record.get("duration") or 0.0
    return table


def aggregate_lines(events, programs=None):
    """Per ``(node, function, file, line)`` cost from instruction
    records -- per-PC rows rolled up through the line tables."""
    table = {}
    for record in events:
        if record.get("type") != "instruction":
            continue
        node = record["node"]
        pc = record.get("pc")
        location = _symbolicate(programs or {}, node, pc) or {}
        key = (node, location.get("function") or ("0x%04x" % (pc or 0)),
               location.get("file") or "", location.get("line") or 0)
        entry = table.get(key)
        if entry is None:
            entry = table[key] = {"count": 0, "energy": 0.0, "time": 0.0}
        entry["count"] += 1
        entry["energy"] += record.get("energy") or 0.0
        entry["time"] += record.get("duration") or 0.0
    return table


def flows_from_events(events):
    """Reassemble journey flows from span records.

    Works identically for live captures and recorded traces; each flow
    is keyed by the packet identity ``kind/src->dst/seq`` (the journey
    tracker's hop-invariant key rendered as text).
    """
    flows = {}
    for record in events:
        if record.get("type") != "span":
            continue
        journey = record["journey"]
        flow = flows.get(journey)
        if flow is None:
            flow = flows[journey] = {
                "key": "%s/%s->%s/seq%s" % (record["pkt"], record["src"],
                                            record["dst"], record["seq"]),
                "pkt": record["pkt"], "src": record["src"],
                "dst": record["dst"], "seq": record["seq"],
                "spans": 0, "hops": 0, "delivered": False,
                "drop_reasons": [], "t_start": record["time"],
                "latency_s": None, "energy_j": 0.0,
            }
        flow["spans"] += 1
        flow["energy_j"] += record.get("energy") or 0.0
        op = record.get("op")
        if op in ("send", "forward"):
            flow["hops"] += 1
        elif op == "deliver":
            flow["delivered"] = True
            flow["latency_s"] = record["time"] - flow["t_start"]
        elif op == "drop" and record.get("reason"):
            flow["drop_reasons"].append(record["reason"])
    # Journeys with the same packet identity (retries) stay distinct per
    # journey id but share a key; suffix duplicates for stable keying.
    seen = {}
    keyed = {}
    for journey in sorted(flows):
        flow = flows[journey]
        key = flow["key"]
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        if occurrence:
            key = "%s#%d" % (key, occurrence)
        keyed[key] = flow
    return keyed


# -- the comparison report ----------------------------------------------------


def _delta_rows(table_a, table_b, fields, base_fields=()):
    """Merge two keyed aggregate tables into delta rows."""
    rows = []
    for key in sorted(set(table_a) | set(table_b), key=str):
        a, b = table_a.get(key), table_b.get(key)
        row = {"a": a, "b": b}
        for name in fields:
            va = (a or {}).get(name) or 0
            vb = (b or {}).get(name) or 0
            row["d_" + name] = vb - va
        for name in base_fields:
            row[name] = ((a or {}).get(name) if a is not None
                         else (b or {}).get(name))
        rows.append((key, row))
    return rows


def _journey_diff(events_a, events_b):
    flows_a = flows_from_events(events_a)
    flows_b = flows_from_events(events_b)
    flows = []
    for key in sorted(set(flows_a) | set(flows_b)):
        a, b = flows_a.get(key), flows_b.get(key)
        changed = []
        if (a is None) != (b is None):
            changed.append("missing_in_" + ("a" if a is None else "b"))
        else:
            if a["delivered"] != b["delivered"]:
                changed.append("delivered")
            if a["drop_reasons"] != b["drop_reasons"]:
                changed.append("drop_reasons")
            if a["hops"] != b["hops"]:
                changed.append("hops")
            if (a["latency_s"] is not None and b["latency_s"] is not None
                    and a["latency_s"] != b["latency_s"]):
                changed.append("latency")
            if a["energy_j"] != b["energy_j"]:
                changed.append("energy")
        flows.append({"key": key, "a": a, "b": b, "changed": changed})

    def totals(flows_table):
        delivered = sum(1 for flow in flows_table.values()
                        if flow["delivered"])
        dropped = sum(1 for flow in flows_table.values()
                      if flow["drop_reasons"] and not flow["delivered"])
        return {"flows": len(flows_table), "delivered": delivered,
                "dropped": dropped,
                "in_flight": len(flows_table) - delivered - dropped}

    return {"flows": flows,
            "totals": {"a": totals(flows_a), "b": totals(flows_b)},
            "changed": sum(1 for flow in flows if flow["changed"])}


def _metrics_diff(metrics_a, metrics_b):
    if metrics_a is None or metrics_b is None:
        return None
    added = sorted(set(metrics_b) - set(metrics_a))
    removed = sorted(set(metrics_a) - set(metrics_b))
    changed = {}
    for name in sorted(set(metrics_a) & set(metrics_b)):
        if metrics_a[name] != metrics_b[name]:
            changed[name] = {"a": metrics_a[name], "b": metrics_b[name]}
    return {"added": added, "removed": removed, "changed": changed}


def _node_totals(events):
    totals = {}
    for record in events:
        if record.get("type") != "instruction":
            continue
        node = record["node"]
        entry = totals.get(node)
        if entry is None:
            entry = totals[node] = {"instructions": 0, "energy": 0.0,
                                    "time": 0.0}
        entry["instructions"] += 1
        entry["energy"] += record.get("energy") or 0.0
        entry["time"] += record.get("duration") or 0.0
    return totals


def compare(run_a, run_b, mode="full", tail=DEFAULT_TAIL, top=DEFAULT_TOP):
    """The full structured comparison of two :class:`RunCapture` s.

    Returns the ``repro.obs.diff/1`` report dict: localized first
    divergence (or ``None``), per-handler/per-PC/per-class deltas,
    per-node totals, journey flow diffs, and metrics-registry diffs.
    """
    divergence = first_divergence(run_a, run_b, mode=mode, tail=tail)

    handlers = []
    for (node, handler), row in _delta_rows(
            aggregate_handlers(run_a.events), aggregate_handlers(run_b.events),
            ("instructions", "energy", "time", "invocations")):
        row.update(node=node, handler=handler)
        handlers.append(row)
    handlers.sort(key=lambda row: -abs(row["d_energy"]))

    programs = dict(run_b.programs or {})
    programs.update(run_a.programs or {})
    pcs = []
    for (node, pc), row in _delta_rows(
            aggregate_pcs(run_a.events), aggregate_pcs(run_b.events),
            ("count", "energy", "time"), base_fields=("mnemonic",)):
        row.update(node=node, pc=pc,
                   location=_symbolicate(programs, node, pc))
        pcs.append(row)
    pcs.sort(key=lambda row: -abs(row["d_energy"]))
    pc_rows_total = len(pcs)
    if top:
        pcs = pcs[:top]

    classes = []
    for (node, name), row in _delta_rows(
            aggregate_classes(run_a.events), aggregate_classes(run_b.events),
            ("count", "energy")):
        row.update(node=node, instr_class=name)
        classes.append(row)
    classes.sort(key=lambda row: -abs(row["d_energy"]))

    layers = []
    for (node, layer), row in _delta_rows(
            aggregate_layers(run_a.events, programs),
            aggregate_layers(run_b.events, programs),
            ("count", "energy", "time")):
        row.update(node=node, layer=layer)
        layers.append(row)
    layers.sort(key=lambda row: -abs(row["d_energy"]))

    lines = []
    for (node, function, file, line), row in _delta_rows(
            aggregate_lines(run_a.events, programs),
            aggregate_lines(run_b.events, programs),
            ("count", "energy", "time")):
        row.update(node=node, function=function, file=file, line=line)
        lines.append(row)
    lines.sort(key=lambda row: -abs(row["d_energy"]))
    line_rows_total = len(lines)
    if top:
        lines = lines[:top]

    nodes = []
    for node, row in _delta_rows(_node_totals(run_a.events),
                                 _node_totals(run_b.events),
                                 ("instructions", "energy", "time")):
        row.update(node=node)
        nodes.append(row)

    return {
        "schema": SCHEMA,
        "mode": mode,
        "runs": {"a": run_a.describe(), "b": run_b.describe()},
        "identical": divergence is None,
        "divergence": divergence.to_dict() if divergence else None,
        "nodes": nodes,
        "handlers": handlers,
        "pcs": pcs,
        "pc_rows_total": pc_rows_total,
        "classes": classes,
        "layers": layers,
        "lines": lines,
        "line_rows_total": line_rows_total,
        "journeys": _journey_diff(run_a.events, run_b.events),
        "metrics": _metrics_diff(run_a.metrics, run_b.metrics),
    }


# -- Markdown rendering -------------------------------------------------------


def render_markdown(report, top=DEFAULT_TOP):
    """Render a comparison report as Markdown (see
    :func:`repro.report.render.markdown_table`)."""
    from repro.report.render import format_signed, markdown_table

    runs = report["runs"]
    lines = ["# snap-diff: %s vs %s" % (runs["a"]["label"],
                                        runs["b"]["label"]),
             "",
             "- schema: `%s`, alignment mode: `%s`" % (report["schema"],
                                                       report["mode"]),
             "- run a: %d events, %s nodes" % (runs["a"]["events"],
                                               len(runs["a"]["nodes"])),
             "- run b: %d events, %s nodes" % (runs["b"]["events"],
                                               len(runs["b"]["nodes"])),
             ""]
    if report["identical"]:
        lines.append("**Verdict: no divergence** -- the streams align "
                     "end to end%s." % (
                         " and state digests match"
                         if report["mode"] == "full" else ""))
    else:
        divergence = report["divergence"]
        lines.append("**Verdict: diverged.**")
        lines.append("")
        lines.append("```")
        lines.append(Divergence(**divergence).describe())
        lines.append("```")
    lines.append("")

    rows = [(row["node"], row["handler"],
             format_signed(row["d_energy"] * 1e9, "nJ"),
             format_signed(row["d_time"] * 1e3, "ms"),
             format_signed(row["d_instructions"]),
             format_signed(row["d_invocations"]))
            for row in report["handlers"][:top]
            if any((row["d_energy"], row["d_time"], row["d_instructions"],
                    row["d_invocations"]))]
    if rows:
        lines.append("## Per-handler deltas (b - a)")
        lines.append(markdown_table(
            ("node", "handler", "energy", "time", "instructions",
             "invocations"), rows))

    rows = []
    for row in report["pcs"][:top]:
        if not (row["d_energy"] or row["d_count"] or row["d_time"]):
            continue
        where = ""
        loc = row.get("location") or {}
        if loc.get("function") or loc.get("file"):
            where = "%s %s:%s" % (loc.get("function") or "?",
                                  loc.get("file") or "?",
                                  loc.get("line") or "?")
        rows.append((row["node"], "0x%04x" % row["pc"],
                     row.get("mnemonic") or "", where,
                     format_signed(row["d_energy"] * 1e9, "nJ"),
                     format_signed(row["d_count"])))
    if rows:
        lines.append("## Per-PC deltas (b - a, top %d of %d)"
                     % (len(rows), report["pc_rows_total"]))
        lines.append(markdown_table(
            ("node", "pc", "insn", "source", "energy", "count"), rows))

    rows = [(row["node"], row["layer"],
             format_signed(row["d_energy"] * 1e9, "nJ"),
             format_signed(row["d_time"] * 1e3, "ms"),
             format_signed(row["d_count"]))
            for row in report.get("layers") or ()
            if any((row["d_energy"], row["d_time"], row["d_count"]))]
    if rows:
        lines.append("## Per-layer energy deltas (b - a)")
        lines.append(markdown_table(
            ("node", "layer", "energy", "time", "instructions"), rows))

    rows = []
    for row in (report.get("lines") or ())[:top]:
        if not (row["d_energy"] or row["d_count"] or row["d_time"]):
            continue
        where = row["function"]
        if row["file"]:
            where = "%s %s:%s" % (row["function"], row["file"], row["line"])
        rows.append((row["node"], where,
                     format_signed(row["d_energy"] * 1e9, "nJ"),
                     format_signed(row["d_count"])))
    if rows:
        lines.append("## Per-source-line deltas (b - a, top %d of %d)"
                     % (len(rows), report.get("line_rows_total", len(rows))))
        lines.append(markdown_table(
            ("node", "source line", "energy", "count"), rows))

    journeys = report["journeys"]
    if journeys["totals"]["a"]["flows"] or journeys["totals"]["b"]["flows"]:
        lines.append("## Packet flows")
        lines.append(markdown_table(
            ("run", "flows", "delivered", "dropped", "in flight"),
            [("a",) + tuple(journeys["totals"]["a"][k] for k in
                            ("flows", "delivered", "dropped", "in_flight")),
             ("b",) + tuple(journeys["totals"]["b"][k] for k in
                            ("flows", "delivered", "dropped", "in_flight"))]))
        changed = [flow for flow in journeys["flows"] if flow["changed"]]
        if changed:
            lines.append(markdown_table(
                ("flow", "changed", "a", "b"),
                [(flow["key"], ", ".join(flow["changed"]),
                  _flow_cell(flow["a"]), _flow_cell(flow["b"]))
                 for flow in changed[:top]]))

    metrics = report.get("metrics")
    if metrics and (metrics["added"] or metrics["removed"]
                    or metrics["changed"]):
        lines.append("## Metrics registry")
        rows = [(name, "-", "added") for name in metrics["added"][:top]]
        rows += [(name, "removed", "-") for name in metrics["removed"][:top]]
        rows += [(name, _short(value["a"]), _short(value["b"]))
                 for name, value in list(metrics["changed"].items())[:top]]
        lines.append(markdown_table(("metric", "a", "b"), rows))

    return "\n".join(lines).rstrip() + "\n"


def _flow_cell(flow):
    if flow is None:
        return "-"
    if flow["delivered"]:
        latency = flow["latency_s"]
        return "delivered %.2fms/%dhops" % ((latency or 0.0) * 1e3,
                                            flow["hops"])
    if flow["drop_reasons"]:
        return "dropped (%s)" % ",".join(flow["drop_reasons"])
    return "in flight"


def _short(value):
    if isinstance(value, dict):
        return "count=%s" % value.get("count")
    if isinstance(value, float):
        return "%.6g" % value
    return str(value)


# -- the calibration-perturbation self-test -----------------------------------

#: The self-test guest: boot touches no data memory (register moves and
#: timer scheduling only), the timer handler is the only code that
#: loads/stores.  Perturbing the DMEM-access calibration therefore first
#: shows up at the handler's first ``ld`` -- which is exactly what the
#: localization must report.
SELFTEST_APP = """
boot:
    movi r1, 0           ; TIMER0 -> on_tick
    movi r2, on_tick
    setaddr r1, r2
    movi r1, 0
    movi r2, 400
    schedlo r1, r2
    done
on_tick:
    ld r3, 0(r0)
    addi r3, 1
    st r3, 0(r0)
    movi r1, 0
    movi r2, 400
    schedlo r1, r2
    done
"""

SELFTEST_HORIZON = 0.02
SELFTEST_HANDLER = "TIMER0"
SELFTEST_FUNCTION = "on_tick"


def selftest_builder(perturb=False, factor=1.5):
    """A ``(sim, horizon)`` builder for the self-test guest; with
    *perturb*, the DMEM-access energy calibration is scaled by
    *factor*."""
    from repro.asm import build
    from repro.core import CoreConfig
    from repro.energy.calibration import DEFAULT_CALIBRATION

    calibration = DEFAULT_CALIBRATION
    if perturb:
        calibration = replace(
            DEFAULT_CALIBRATION,
            dmem_access_pj=DEFAULT_CALIBRATION.dmem_access_pj * factor)

    def make():
        from repro.node.node import SensorNode

        node = SensorNode(node_id=0,
                          config=CoreConfig(calibration=calibration))
        node.load(build(SELFTEST_APP))
        node.processor.start()
        return node, SELFTEST_HORIZON

    return make


def self_test(bisect=False):
    """Perturb the calibration and verify snap-diff localizes it.

    Runs the self-test guest against a twin whose DMEM-access energy is
    scaled, and checks the first divergence lands on an ``ld`` inside
    the timer handler with the right symbolicated function.  Returns
    ``(ok, failures, report)``; *failures* lists every check that did
    not hold (empty when *ok*).
    """
    make_a = selftest_builder(perturb=False)
    make_b = selftest_builder(perturb=True)
    if bisect:
        bisector = Bisector(make_a, make_b)
        divergence, run_a, run_b = bisector.localize(
            label_a="calibrated", label_b="perturbed")
        if divergence is None:
            return False, ["bisector found no divergence"], None
        report = compare(run_a, run_b)
        report["divergence"] = divergence.to_dict()
        report["identical"] = False
    else:
        sim_a, horizon = make_a()
        run_a = capture_run(sim_a, horizon, label="calibrated")
        sim_b, horizon = make_b()
        run_b = capture_run(sim_b, horizon, label="perturbed")
        report = compare(run_a, run_b)
        divergence = report["divergence"] and Divergence(
            **report["divergence"])

    failures = []
    if divergence is None:
        failures.append("no divergence found between calibrated and "
                        "perturbed runs")
        return False, failures, report
    record = divergence.record_a or {}
    if record.get("type") != "instruction":
        failures.append("divergent record is %r, expected an instruction"
                        % (record.get("type"),))
    if divergence.handler != SELFTEST_HANDLER:
        failures.append("localized handler %r, expected %r"
                        % (divergence.handler, SELFTEST_HANDLER))
    if not (divergence.mnemonic or "").startswith("ld"):
        failures.append("localized instruction %r, expected the "
                        "handler's first ld" % (divergence.mnemonic,))
    location = divergence.location or {}
    if location.get("function") != SELFTEST_FUNCTION:
        failures.append("symbolicated function %r, expected %r"
                        % (location.get("function"), SELFTEST_FUNCTION))
    if divergence.fields and divergence.fields != ["energy"]:
        failures.append("divergent fields %r, expected ['energy']"
                        % (divergence.fields,))
    return not failures, failures, report
