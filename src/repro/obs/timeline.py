"""The network energy-timeline sampler.

Network-lifetime claims need a *drain curve*, not a single end-of-run
total: which node is draining fastest, when the radio duty cycle
changes, whether the event queue is backing up.  The
:class:`TimelineSampler` periodically snapshots every node of a
:class:`~repro.network.simulator.NetworkSimulator` (or a single node)
into an aligned time-series -- one row per (tick, node) with cumulative
energies, the per-component breakdown, the radio's duty-cycle state,
and the event-queue depth.

The sampler only *reads* simulation state; its kernel callbacks mutate
nothing, so an instrumented run stays bit-identical to an
uninstrumented one.  Rows are kept in memory for
:meth:`drain_curve` / :meth:`to_csv`, and each row is also emitted on
the trace bus as a :class:`~repro.obs.events.TimelineSample` event when
an observability context is attached.
"""

import csv

#: Column order of a timeline row (and of the exported CSV).
TIMELINE_FIELDS = (
    "time_s", "node", "energy_j", "cpu_energy_j", "cpu_instruction_j",
    "cpu_idle_j", "radio_energy_j", "radio_mode", "duty_tx", "duty_rx",
    "queue_depth", "instructions",
)


class TimelineSampler:
    """Samples per-node energy and activity on a fixed simulated period.

    *nodes* is a mapping of node id (or name) to
    :class:`~repro.node.node.SensorNode`; pass a
    :class:`~repro.network.simulator.NetworkSimulator` to
    :meth:`for_network` instead.  Call :meth:`start` after the nodes are
    created; sampling stops by itself when :meth:`stop` is called or the
    kernel simply stops running.
    """

    def __init__(self, kernel, nodes, interval, obs=None, retain=True):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.kernel = kernel
        self.nodes = nodes
        self.interval = interval
        self.obs = obs
        #: With ``retain=False`` rows are returned from :meth:`sample`
        #: (and emitted on the bus) but not accumulated in ``rows`` --
        #: the telemetry exporter samples on every flush of an
        #: arbitrarily long run and must not grow host memory with it.
        self.retain = retain
        self.rows = []
        self._running = False
        #: Previous cumulative radio (tx_time, rx_time) per node, for
        #: duty-cycle deltas.
        self._last_radio = {}

    @classmethod
    def for_network(cls, net, interval, obs=None, retain=True):
        """A sampler over every node of a :class:`NetworkSimulator`."""
        return cls(net.kernel, net.nodes, interval, obs=obs, retain=retain)

    # -- scheduling -----------------------------------------------------------

    def start(self, first_delay=None):
        """Take a first sample after *first_delay* (default: one
        interval), then keep sampling every interval."""
        self._running = True
        delay = self.interval if first_delay is None else first_delay
        self.kernel.schedule(delay, self._tick)
        return self

    def stop(self):
        self._running = False

    def _tick(self):
        if not self._running:
            return
        self.sample()
        self.kernel.schedule(self.interval, self._tick)

    # -- sampling -------------------------------------------------------------

    def sample(self):
        """Take one aligned snapshot of every node right now.

        Returns the list of rows produced by this call (one per node);
        with :attr:`retain` set they are also appended to :attr:`rows`.
        """
        now = self.kernel.now
        new_rows = [self._row(now, node_id, node)
                    for node_id, node in self.nodes.items()]
        if self.retain:
            self.rows.extend(new_rows)
        return new_rows

    def _row(self, now, node_id, node):
        meter = node.meter
        radio = node.radio
        cpu_energy = meter.total_energy
        instruction_energy = (cpu_energy - meter.wakeup_energy
                              - meter.event_token_energy - meter.idle_energy)
        radio_energy = radio.radio_energy()
        tx_time, rx_time = radio.tx_time, radio.rx_time
        if radio.mode.value == "rx" and radio._rx_since is not None:
            rx_time += now - radio._rx_since
        last_tx, last_rx, last_t = self._last_radio.get(node_id, (0.0, 0.0, 0.0))
        window = now - last_t
        duty_tx = (tx_time - last_tx) / window if window > 0 else 0.0
        duty_rx = (rx_time - last_rx) / window if window > 0 else 0.0
        self._last_radio[node_id] = (tx_time, rx_time, now)
        row = {
            "time_s": now,
            "node": node_id,
            "energy_j": cpu_energy + radio_energy,
            "cpu_energy_j": cpu_energy,
            "cpu_instruction_j": instruction_energy,
            "cpu_idle_j": meter.idle_energy,
            "radio_energy_j": radio_energy,
            "radio_mode": radio.mode.value,
            "duty_tx": duty_tx,
            "duty_rx": duty_rx,
            "queue_depth": len(node.processor.event_queue),
            "instructions": meter.instructions,
        }
        if self.obs is not None:
            self.obs.timeline_sample(
                node.name, now, energy=row["energy_j"],
                cpu_energy=cpu_energy, radio_energy=radio_energy,
                radio_mode=row["radio_mode"], duty_tx=duty_tx,
                duty_rx=duty_rx, queue_depth=row["queue_depth"],
                instructions=meter.instructions)
        return row

    # -- queries and export ---------------------------------------------------

    def drain_curve(self, node_id):
        """``(time_s, cumulative energy_j)`` points for one node."""
        return [(row["time_s"], row["energy_j"]) for row in self.rows
                if row["node"] == node_id]

    def node_ids(self):
        seen = []
        for row in self.rows:
            if row["node"] not in seen:
                seen.append(row["node"])
        return seen

    def to_csv(self, path_or_handle):
        """Write the aligned time-series as CSV (one row per tick+node)."""
        handle = path_or_handle
        close = False
        if isinstance(path_or_handle, str):
            handle = open(path_or_handle, "w", newline="")
            close = True
        try:
            writer = csv.DictWriter(handle, fieldnames=TIMELINE_FIELDS)
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)
        finally:
            if close:
                handle.close()
        return path_or_handle
