"""A lightweight metrics registry: counters, gauges, and histograms.

Metric names are dotted paths (``node0.cpu.instructions``,
``channel.collisions``).  Instruments are get-or-create: asking the
registry for an existing name returns the same object, so call sites can
cache the instrument once and skip the dict lookup on the hot path.

:meth:`MetricsRegistry.snapshot` renders everything to plain Python
values for JSON dumps and report tables.
"""

from collections import OrderedDict


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, mode, ...)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value):
        self.value = value

    def inc(self, amount=1):
        self.value += amount

    def dec(self, amount=1):
        self.value -= amount


class Histogram:
    """Running summary statistics plus quantiles of a distribution.

    Alongside the O(1) running aggregates, the histogram retains a
    bounded sample reservoir for :meth:`percentile`.  The reservoir is
    deterministic: once it fills, every other retained sample is
    discarded and the sampling stride doubles, so long runs keep an
    evenly spaced subset of the stream rather than a random one --
    repeated runs of the same simulation report identical quantiles.
    """

    __slots__ = ("count", "total", "min", "max", "_samples", "_stride",
                 "_limit", "_phase")

    #: Default reservoir capacity; plenty for per-hop latency tables
    #: while keeping the worst-case footprint small.
    SAMPLE_LIMIT = 4096

    def __init__(self, sample_limit=SAMPLE_LIMIT):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._samples = []
        self._stride = 1
        self._phase = 0
        self._limit = sample_limit

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if self._phase == 0:
            self._samples.append(value)
            if len(self._samples) >= self._limit:
                self._samples = self._samples[::2]
                self._stride *= 2
        self._phase = (self._phase + 1) % self._stride

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, p):
        """The *p*-th percentile (0..100), linearly interpolated over the
        retained sample reservoir; ``None`` before any observation."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (min(max(p, 0.0), 100.0) / 100.0) * (len(ordered) - 1)
        low = int(rank)
        frac = rank - low
        if low + 1 >= len(ordered):
            return ordered[-1]
        return ordered[low] * (1.0 - frac) + ordered[low + 1] * frac

    def summary(self):
        return {"count": self.count, "total": self.total,
                "sum": self.total, "mean": self.mean,
                "min": self.min, "max": self.max,
                "p50": self.percentile(50), "p90": self.percentile(90),
                "p99": self.percentile(99)}


class MetricsRegistry:
    """Named counters, gauges, and histograms."""

    def __init__(self):
        self._metrics = OrderedDict()

    def counter(self, name):
        return self._get(name, Counter)

    def gauge(self, name):
        return self._get(name, Gauge)

    def histogram(self, name):
        return self._get(name, Histogram)

    def _get(self, name, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, factory):
            raise TypeError("metric %r is a %s, not a %s"
                            % (name, type(metric).__name__, factory.__name__))
        return metric

    def __contains__(self, name):
        return name in self._metrics

    def __len__(self):
        return len(self._metrics)

    def names(self):
        return list(self._metrics)

    def snapshot(self):
        """Every metric as a plain value (histograms as summary dicts)."""
        result = OrderedDict()
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                result[name] = metric.summary()
            else:
                result[name] = metric.value
        return result

    def diff(self, prev):
        """Only the metrics that changed since *prev* (a prior
        :meth:`snapshot` dict, or ``None`` for everything).

        Returns a snapshot-shaped dict restricted to instruments whose
        value moved -- new metrics are always included.  Histograms
        compare by their full summary, so a quantile shift with an
        unchanged count still registers.  This is the delta source for
        the telemetry exporter's ``metrics`` records, and is handy on
        its own for "what moved during this window" debugging.
        """
        if prev is None:
            return self.snapshot()
        changed = OrderedDict()
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                value = metric.summary()
            else:
                value = metric.value
            if name not in prev or prev[name] != value:
                changed[name] = value
        return changed
