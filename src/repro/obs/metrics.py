"""A lightweight metrics registry: counters, gauges, and histograms.

Metric names are dotted paths (``node0.cpu.instructions``,
``channel.collisions``).  Instruments are get-or-create: asking the
registry for an existing name returns the same object, so call sites can
cache the instrument once and skip the dict lookup on the hot path.

:meth:`MetricsRegistry.snapshot` renders everything to plain Python
values for JSON dumps and report tables.
"""

from collections import OrderedDict


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, mode, ...)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value):
        self.value = value

    def inc(self, amount=1):
        self.value += amount

    def dec(self, amount=1):
        self.value -= amount


class Histogram:
    """Running summary statistics of an observed distribution."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def summary(self):
        return {"count": self.count, "total": self.total,
                "mean": self.mean, "min": self.min, "max": self.max}


class MetricsRegistry:
    """Named counters, gauges, and histograms."""

    def __init__(self):
        self._metrics = OrderedDict()

    def counter(self, name):
        return self._get(name, Counter)

    def gauge(self, name):
        return self._get(name, Gauge)

    def histogram(self, name):
        return self._get(name, Histogram)

    def _get(self, name, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, factory):
            raise TypeError("metric %r is a %s, not a %s"
                            % (name, type(metric).__name__, factory.__name__))
        return metric

    def __contains__(self, name):
        return name in self._metrics

    def __len__(self):
        return len(self._metrics)

    def names(self):
        return list(self._metrics)

    def snapshot(self):
        """Every metric as a plain value (histograms as summary dicts)."""
        result = OrderedDict()
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                result[name] = metric.summary()
            else:
                result[name] = metric.value
        return result
