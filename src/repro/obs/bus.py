"""The structured trace bus and its sinks.

A :class:`TraceBus` fans typed :mod:`~repro.obs.events` out to any number
of sinks (plain callables).  Components hold an ``obs`` reference that is
``None`` by default and guard every emission site with an ``is not None``
check, so an uninstrumented run executes no observability code at all --
the zero-cost property the benchmarks rely on.

Sinks provided here:

* :class:`MemorySink` -- a bounded in-memory ring, for tests and the
  profiler CLI;
* :class:`JsonlSink` -- one JSON object per line, streamed to a file;
* :func:`chrome_trace` / :func:`write_chrome_trace` -- convert a list of
  events to the Chrome ``chrome://tracing`` (Trace Event Format) JSON.
"""

import json
from collections import deque


class TraceBus:
    """Fans events out to attached sinks; no sinks means no work."""

    __slots__ = ("sinks",)

    def __init__(self):
        self.sinks = []

    def attach(self, sink):
        """Attach a sink (any ``sink(event)`` callable); returns it."""
        self.sinks.append(sink)
        return sink

    def detach(self, sink):
        self.sinks.remove(sink)

    def emit(self, event):
        for sink in self.sinks:
            sink(event)


class MemorySink:
    """Keeps the most recent *limit* events in memory."""

    def __init__(self, limit=None):
        self.events = deque(maxlen=limit)

    def __call__(self, event):
        self.events.append(event)

    def __len__(self):
        return len(self.events)

    def records(self):
        """The buffered events as plain dicts."""
        return [event.to_record() for event in self.events]


class KindFilter:
    """Forward only events whose ``kind`` is in *kinds* to *sink*."""

    def __init__(self, kinds, sink):
        self.kinds = frozenset(kinds)
        self.sink = sink

    def __call__(self, event):
        if event.kind in self.kinds:
            self.sink(event)


class JsonlSink:
    """Stream events to *path* as JSON Lines.

    Use as a context manager (``with JsonlSink(path) as sink: ...``) so
    buffered trail events are flushed and the handle closed even when
    the surrounding run raises; otherwise call :meth:`close` when done.
    """

    def __init__(self, path):
        self.path = path
        self._handle = open(path, "w")
        self.count = 0

    def __call__(self, event):
        if self._handle is None:
            return
        json.dump(event.to_record(), self._handle)
        self._handle.write("\n")
        self.count += 1

    def flush(self):
        """Push buffered lines to the OS without closing the sink."""
        if self._handle is not None:
            self._handle.flush()

    def close(self):
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    @property
    def closed(self):
        return self._handle is None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def read_jsonl(path):
    """Load a JSONL trace back into a list of record dicts."""
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


# -- Chrome trace-event export -------------------------------------------------

#: Microseconds per simulated second in the exported timeline.  Chrome's
#: viewer works in microseconds; SNAP events are nanoseconds apart, so
#: the export stretches simulated time by 1e6 (1 us shown = 1 ps real).
CHROME_TIME_SCALE = 1e6


def chrome_trace(events, time_scale=CHROME_TIME_SCALE):
    """Convert trace events to Chrome Trace Event Format entries.

    Instructions become complete ("X") slices on their node's track;
    packet-journey spans become slices tied together across node tracks
    by *flow events* (one flow id per journey, so a multi-hop packet
    renders as arrows hopping between nodes); timeline samples become
    counter ("C") tracks; everything else becomes an instant ("i")
    event.  Load the resulting JSON in ``chrome://tracing`` or
    https://ui.perfetto.dev.
    """
    entries = []
    #: Span events per journey, in input order, for flow termination.
    journeys = {}
    spans = [event for event in events if event.kind == "span"]
    for event in spans:
        journeys.setdefault(event.journey, []).append(event)
    for event in events:
        timestamp = event.time * time_scale
        record = event.to_record()
        if event.kind == "instruction":
            entries.append({
                "name": record["mnemonic"],
                "cat": record["handler"],
                "ph": "X",
                "ts": timestamp,
                "dur": record["duration"] * time_scale,
                "pid": event.node,
                "tid": record["handler"],
                "args": {"pc": "0x%04x" % record["pc"],
                         "energy_pJ": record["energy"] * 1e12},
            })
        elif event.kind == "span":
            name = "%s %s" % (event.op, event.pkt)
            args = {"journey": event.journey, "span": event.span,
                    "src": event.src, "dst": event.dst, "seq": event.seq,
                    "words": event.words,
                    "energy_nJ": event.energy * 1e9}
            if event.reason:
                args["reason"] = event.reason
            slice_entry = {
                "name": name, "cat": "journey", "ph": "X",
                "ts": timestamp, "dur": event.duration * time_scale,
                "pid": event.node, "tid": "net", "args": args,
            }
            entries.append(slice_entry)
            # One flow per journey: starts at the first span, steps
            # through intermediate spans, finishes at the last one.
            chain = journeys[event.journey]
            if event is chain[0]:
                phase = "s"
            elif event is chain[-1]:
                phase = "f"
            else:
                phase = "t"
            flow = {
                "name": "journey-%d" % event.journey, "cat": "journey",
                "ph": phase, "id": event.journey,
                "ts": timestamp, "pid": event.node, "tid": "net",
            }
            if phase == "f":
                flow["bp"] = "e"   # bind to the enclosing slice
            entries.append(flow)
        elif event.kind == "timeline":
            entries.append({
                "name": "energy_nJ", "cat": "timeline", "ph": "C",
                "ts": timestamp, "pid": event.node,
                "args": {"cpu": event.cpu_energy * 1e9,
                         "radio": event.radio_energy * 1e9},
            })
        else:
            args = {key: value for key, value in record.items()
                    if key not in ("type", "time", "node")}
            entries.append({
                "name": event.kind,
                "cat": event.kind,
                "ph": "i",
                "s": "t",
                "ts": timestamp,
                "pid": event.node,
                "tid": event.kind,
                "args": args,
            })
    return entries


def write_chrome_trace(events, path, time_scale=CHROME_TIME_SCALE):
    """Write *events* to *path* in Chrome Trace Event Format."""
    payload = {"traceEvents": chrome_trace(events, time_scale=time_scale),
               "displayTimeUnit": "ns"}
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return path
