"""Non-blocking transports for the streaming telemetry exporter.

A transport moves one NDJSON line at a time from the simulation process
to whoever is watching it.  The cardinal rule, shared by every
implementation here, is that **a transport must never block the
simulation kernel**: a slow disk flushes late, a slow or vanished socket
consumer gets records *dropped and counted*, never awaited.  The
exporter surfaces the drop counters in its ``progress`` records, so a
consumer can tell when its view has holes.

Implementations:

* :class:`FileTransport` -- append NDJSON lines to a file (or an open
  handle); the durable option, never drops.
* :class:`StreamTransport` -- write to an existing text stream
  (stdout by default) for piping straight into ``snap-top`` or ``jq``.
* :class:`SocketServerTransport` -- a localhost TCP fan-out server:
  ``snap-run --telemetry-port`` hosts one, any number of ``snap-top``
  clients attach and detach mid-run.  All sockets are non-blocking;
  each client gets a bounded pending buffer and whole-record drops on
  overflow, and a broken client is reaped, so a malformed or abandoned
  consumer cannot stall the simulation.
* :class:`NullTransport` -- discard everything (lets ``snap-run
  --progress`` reuse the exporter machinery without a stream).
"""

import errno
import socket


class TelemetryTransport:
    """Interface and shared counters for telemetry transports.

    ``send(line)`` takes one complete NDJSON line (no trailing newline)
    and returns ``True`` when the record was accepted for delivery to at
    least one destination.  ``sent`` counts accepted records;
    ``dropped`` counts records discarded because a destination could not
    keep up (per destination: a record dropped for two slow clients
    counts twice).
    """

    def __init__(self):
        self.sent = 0
        self.dropped = 0

    def send(self, line):
        raise NotImplementedError

    def poll(self):
        """Service the transport between batches.

        Returns ``True`` when a *new* consumer appeared since the last
        poll and the exporter should re-send its stream preamble (hello
        plus a full metrics snapshot) so delta decoding can start from a
        known base.  Default: no new consumers, ever.
        """
        return False

    def flush(self):
        pass

    def close(self):
        pass


class FileTransport(TelemetryTransport):
    """Append NDJSON lines to *path* (or an already-open text handle)."""

    def __init__(self, path_or_handle):
        super().__init__()
        if isinstance(path_or_handle, str):
            self._handle = open(path_or_handle, "w")
            self._owns = True
        else:
            self._handle = path_or_handle
            self._owns = False

    def send(self, line):
        if self._handle is None:
            return False
        self._handle.write(line)
        self._handle.write("\n")
        self.sent += 1
        return True

    def flush(self):
        if self._handle is not None:
            self._handle.flush()

    def close(self):
        if self._handle is not None:
            self._handle.flush()
            if self._owns:
                self._handle.close()
            self._handle = None


class StreamTransport(FileTransport):
    """Write NDJSON lines to an existing text stream (never closed)."""

    def __init__(self, stream=None):
        import sys
        super().__init__(stream if stream is not None else sys.stdout)


class NullTransport(TelemetryTransport):
    """Accept and discard every record (progress-only exporter runs)."""

    def send(self, line):
        self.sent += 1
        return True


class _Client:
    """One attached consumer of a :class:`SocketServerTransport`."""

    __slots__ = ("sock", "pending", "dropped", "address")

    def __init__(self, sock, address):
        self.sock = sock
        self.address = address
        self.pending = bytearray()
        self.dropped = 0


class SocketServerTransport(TelemetryTransport):
    """Fan NDJSON lines out to TCP clients without ever blocking.

    Binds a listening socket on *host*:*port* (``port=0`` picks an
    ephemeral port; read :attr:`port` after construction).  Clients are
    accepted lazily from :meth:`poll` -- the exporter calls it once per
    flush -- and each holds a pending byte buffer bounded by
    *max_pending*.  When a record does not fit in a client's buffer the
    record is dropped *for that client* and counted; the bytes already
    queued stay intact so the client's NDJSON framing never tears
    mid-line.  Write errors (consumer closed its end, reset, vanished)
    reap the client.  Anything a client sends *to* us is drained and
    ignored, so a confused consumer writing garbage cannot wedge the
    socket either.
    """

    #: Default per-client pending ceiling: a few thousand telemetry
    #: records -- enough to ride out a terminal redraw, small enough
    #: that an abandoned consumer costs a bounded amount of memory.
    DEFAULT_MAX_PENDING = 256 * 1024

    def __init__(self, host="127.0.0.1", port=0,
                 max_pending=DEFAULT_MAX_PENDING):
        super().__init__()
        self.max_pending = max_pending
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(8)
        self._listener.setblocking(False)
        self.host, self.port = self._listener.getsockname()[:2]
        self._clients = []

    @property
    def address(self):
        return "%s:%d" % (self.host, self.port)

    @property
    def clients(self):
        """Number of currently attached consumers."""
        return len(self._clients)

    # -- consumer management ---------------------------------------------------

    def poll(self):
        """Accept pending connections; ``True`` when anyone new joined."""
        if self._listener is None:
            return False
        joined = False
        while True:
            try:
                sock, address = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                break
            sock.setblocking(False)
            self._clients.append(_Client(sock, address))
            joined = True
        # Drain (and ignore) anything consumers wrote to us; a closed
        # peer surfaces here as EOF and is reaped without a write.
        for client in list(self._clients):
            self._drain_input(client)
        return joined

    def _drain_input(self, client):
        while True:
            try:
                data = client.sock.recv(4096)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._reap(client)
                return
            if not data:        # orderly shutdown from the consumer
                self._reap(client)
                return

    def _reap(self, client):
        try:
            client.sock.close()
        except OSError:
            pass
        if client in self._clients:
            self._clients.remove(client)

    # -- sending ---------------------------------------------------------------

    def send(self, line):
        data = (line + "\n").encode("utf-8")
        delivered = False
        for client in list(self._clients):
            if len(client.pending) + len(data) > self.max_pending:
                client.dropped += 1
                self.dropped += 1
            else:
                client.pending += data
                delivered = True
            self._pump(client)
        self.sent += 1
        return delivered or not self._clients

    def _pump(self, client):
        """Push as much pending data as the OS will take right now."""
        while client.pending:
            try:
                written = client.sock.send(client.pending)
            except (BlockingIOError, InterruptedError):
                return
            except OSError as error:
                if error.errno in (errno.EAGAIN, errno.EWOULDBLOCK):
                    return
                self._reap(client)
                return
            if written <= 0:
                return
            del client.pending[:written]

    def flush(self):
        for client in list(self._clients):
            self._pump(client)

    def close(self):
        for client in list(self._clients):
            self._pump(client)
            self._reap(client)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
