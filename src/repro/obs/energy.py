"""Causal energy provenance: every picojoule, attributed four ways.

The :class:`EnergyLedger` is a trace-bus sink (the same interface as the
:class:`~repro.obs.profiler.Profiler`) that turns the per-instruction
energy stream into four reconciling views:

* **source lines** -- per-(node, pc, handler) accumulation symbolicated
  through ``Program.lookup`` line tables and rolled up into call-free
  flame graphs (collapsed-stack and speedscope JSON export);
* **protocol layers** -- app / aggregation / reliable / AODV / MAC /
  radio / idle-sleep, via the netstack layout's handler->layer and
  function-prefix maps;
* **packet identity** -- each journey's true end-to-end cost including
  forwarding CPU, TX/RX air time, and overhearing on third-party nodes,
  by matching handler invocations to journey span time windows;
* **node lifetime** -- linear and drain-curve battery projections over
  :class:`~repro.obs.timeline.TimelineSampler` rows.

Reconciliation contract: every view reports ``attributed_j``, the
ledger-wide ``total_j`` (sum of every registered meter's total energy
plus every registered radio's energy), and the ``residual_j`` between
them -- unattributed energy is surfaced, never silently dropped.
Because the ledger sums the identical per-instruction floats the meter
records (in the identical order, through the fast-path burst loop too),
line counters are bit-identical across engines and residuals stay at
float-rounding scale.
"""

import math
from dataclasses import dataclass

from repro.netstack.layout import LAYERS, function_layer, handler_layer

#: Pseudo-frames for the meter's non-instruction costs.
_WAKEUP = "[wakeup]"
_TOKEN = "[event-token]"
_IDLE = "[idle]"
_RADIO = "[radio]"


@dataclass
class LineStat:
    """Accumulated cost of one (node, pc, handler) site."""

    node: str
    pc: int
    handler: str
    count: int = 0
    energy: float = 0.0
    time: float = 0.0
    mnemonic: str = ""


class _NodeRecord:
    """What the ledger knows about one registered core."""

    __slots__ = ("cpu", "name", "processor", "meter", "radio", "node_id")

    def __init__(self, cpu, name, processor, meter, radio=None, node_id=None):
        self.cpu = cpu
        self.name = name
        self.processor = processor
        self.meter = meter
        self.radio = radio
        self.node_id = node_id

    @property
    def program(self):
        return getattr(self.processor, "program", None)


class EnergyLedger:
    """A trace-bus sink that attributes energy to lines, layers, packets,
    and lifetimes, reconciling each view against the meters."""

    def __init__(self, max_invocations=200_000):
        #: (cpu name, pc, handler tag) -> :class:`LineStat`.
        self.by_line = {}
        #: cpu name -> list of ``[t0, t_end, handler, energy]`` handler
        #: invocations (``t_end is None`` while open).  Bounded by
        #: *max_invocations* per cpu; overflow energy is accumulated in
        #: :attr:`overflow_energy` so reconciliation still holds.
        self.invocations = {}
        self.overflow_energy = {}
        self.max_invocations = max_invocations
        #: Total instruction energy seen on the bus.
        self.energy = 0.0
        self.instructions = 0
        #: cpu name -> :class:`_NodeRecord`.
        self._records = {}
        #: The owning :class:`Observability` (set by the context); used
        #: to reach the journey tracker for the packet view.
        self.obs = None

    # -- registration ---------------------------------------------------------

    def register_node(self, node):
        """Register a :class:`~repro.node.node.SensorNode` (its cpu,
        meter, radio, and program feed every view)."""
        cpu = node.processor.name
        self._records[cpu] = _NodeRecord(
            cpu, node.name, node.processor, node.processor.meter,
            radio=node.radio, node_id=node.node_id)

    def register_processor(self, processor):
        """Register a bare core (no radio) by its processor."""
        if processor.name not in self._records:
            self._records[processor.name] = _NodeRecord(
                processor.name, processor.name, processor, processor.meter)

    def records(self):
        return list(self._records.values())

    # -- the sink interface ---------------------------------------------------

    def __call__(self, event):
        kind = event.kind
        if kind == "instruction":
            self.instructions += 1
            self.energy += event.energy
            key = (event.node, event.pc, event.handler)
            stat = self.by_line.get(key)
            if stat is None:
                stat = self.by_line[key] = LineStat(
                    event.node, event.pc, event.handler,
                    mnemonic=event.mnemonic)
            stat.count += 1
            stat.energy += event.energy
            stat.time += event.duration
            self._charge_invocation(event.node, event.time, event.handler,
                                    event.energy)
        elif kind == "dispatch":
            self._dispatch(event.node, event.time, event.handler)

    def _charge_invocation(self, cpu, time, handler, energy):
        stack = self.invocations.get(cpu)
        if stack is None:
            stack = self.invocations[cpu] = []
        if not stack or stack[-1][1] is not None:
            # Instructions before any dispatch run under the boot tag.
            if len(stack) >= self.max_invocations:
                self.overflow_energy[cpu] = \
                    self.overflow_energy.get(cpu, 0.0) + energy
                return
            stack.append([time, None, handler, 0.0])
        stack[-1][3] += energy

    def _dispatch(self, cpu, time, handler):
        stack = self.invocations.get(cpu)
        if stack is None:
            stack = self.invocations[cpu] = []
        if stack and stack[-1][1] is None:
            stack[-1][1] = time
        if len(stack) >= self.max_invocations:
            return
        stack.append([time, None, handler, 0.0])

    # -- symbolication --------------------------------------------------------

    def _symbolicate(self, record, pc):
        """``(function, file, line)`` for one pc, best effort."""
        program = record.program if record is not None else None
        if program is None:
            return (None, None, None)
        loc = program.lookup(pc)
        return (loc.function, loc.file or None, loc.line)

    def _frames(self):
        """Roll per-pc stats up into (node, layer, handler, function,
        file, line) frames, plus meter/radio pseudo-frames."""
        frames = {}

        def add(node, layer, handler, function, file, line, energy, time=0.0,
                count=0):
            key = (node, layer, handler, function, file, line)
            frame = frames.get(key)
            if frame is None:
                frame = frames[key] = {
                    "node": node, "layer": layer, "handler": handler,
                    "function": function, "file": file, "line": line,
                    "energy_j": 0.0, "time_s": 0.0, "count": 0}
            frame["energy_j"] += energy
            frame["time_s"] += time
            frame["count"] += count

        for (cpu, pc, handler), stat in self.by_line.items():
            record = self._records.get(cpu)
            node = record.name if record is not None else cpu
            function, file, line = self._symbolicate(record, pc)
            layer = function_layer(function, handler)
            add(node, layer, handler,
                function or ("0x%04x" % pc), file, line,
                stat.energy, stat.time, stat.count)
        for record in self._records.values():
            meter = record.meter
            add(record.name, "idle-sleep", "-", _WAKEUP, None, None,
                meter.wakeup_energy)
            add(record.name, "idle-sleep", "-", _TOKEN, None, None,
                meter.event_token_energy)
            add(record.name, "idle-sleep", "-", _IDLE, None, None,
                meter.idle_energy)
            if record.radio is not None:
                add(record.name, "radio", "-", _RADIO, None, None,
                    record.radio.radio_energy())
        return [frames[key] for key in sorted(
            frames, key=lambda k: tuple("" if v is None else str(v)
                                        for v in k))]

    # -- reconciliation -------------------------------------------------------

    def total_energy(self):
        """Ground truth: every registered meter + radio, in joules."""
        total = 0.0
        for record in self._records.values():
            total += record.meter.total_energy
            if record.radio is not None:
                total += record.radio.radio_energy()
        return total

    def _reconcile(self, attributed):
        total = self.total_energy()
        residual = total - attributed
        return {
            "attributed_j": attributed,
            "total_j": total,
            "residual_j": residual,
            "residual_frac": abs(residual) / total if total else 0.0,
        }

    def reconcile(self):
        """Ledger-level reconciliation of the instruction stream against
        the meters (sans wakeup/token/idle, like the profiler)."""
        meter_instruction = 0.0
        for record in self._records.values():
            meter = record.meter
            meter_instruction += (meter.total_energy - meter.wakeup_energy
                                  - meter.event_token_energy
                                  - meter.idle_energy)
        return self.energy, meter_instruction

    # -- the four views -------------------------------------------------------

    def line_view(self):
        """Per-source-line attribution (flame-graph frames) with
        explicit residual."""
        frames = self._frames()
        result = self._reconcile(sum(f["energy_j"] for f in frames))
        result["frames"] = sorted(frames, key=lambda f: -f["energy_j"])
        return result

    def layer_view(self):
        """Per-protocol-layer attribution with explicit residual."""
        layers = {layer: 0.0 for layer in LAYERS}
        for frame in self._frames():
            layers[frame["layer"]] = layers.get(frame["layer"], 0.0) \
                + frame["energy_j"]
        result = self._reconcile(sum(layers.values()))
        result["layers"] = layers
        return result

    def layer_totals(self):
        """Just the layer -> joules map (telemetry's incremental feed)."""
        return self.layer_view()["layers"]

    def packet_view(self, journeys=None):
        """Per-packet end-to-end cost: radio air time plus the CPU
        invocations each journey caused, with everything unmatched
        reported as an explicit ``(non-packet)`` bucket."""
        tracker = journeys
        if tracker is None and self.obs is not None:
            tracker = self.obs.journeys
        journeys_list = tracker.journeys if tracker is not None else []
        rows, matched_cpu = self._match_journeys(journeys_list)

        instruction_total = self.energy
        for extra in self.overflow_energy.values():
            instruction_total += extra
        idle_sleep = 0.0
        radio_total = 0.0
        for record in self._records.values():
            meter = record.meter
            idle_sleep += (meter.wakeup_energy + meter.event_token_energy
                           + meter.idle_energy)
            if record.radio is not None:
                radio_total += record.radio.radio_energy()
        journey_radio = sum(row["radio_j"] for row in rows)
        non_packet = {
            "cpu_j": instruction_total - matched_cpu,
            "idle_sleep_j": idle_sleep,
            "radio_idle_j": radio_total - journey_radio,
        }
        attributed = (sum(row["total_j"] for row in rows)
                      + sum(non_packet.values()))
        result = self._reconcile(attributed)
        result["packets"] = rows
        result["non_packet"] = non_packet
        return result

    def _match_journeys(self, journeys):
        """Charge handler invocations to journey span windows.

        Returns ``(rows, matched_cpu_energy)``.  Matching is
        first-match-wins in time order; an invocation is charged at most
        once, and anything unmatched lands in the ``(non-packet)``
        bucket -- so reconciliation never depends on matching quality.
        """
        # Per node name: (time, deadline, kind, journey id) windows.
        windows = {}
        rows = []
        by_name = {record.name: record for record in self._records.values()}
        for journey in journeys:
            rows.append({
                "journey": journey.id,
                "kind": journey.kind,
                "origin": journey.origin,
                "destination": journey.destination,
                "seq": journey.seq,
                "delivered": journey.delivered,
                "hops": journey.hop_count,
                "radio_j": journey.energy,
                "cpu_j": 0.0,
            })
            for span in journey.spans:
                record = by_name.get(span.node)
                grace = 1e-3
                if record is not None and record.radio is not None:
                    grace = record.radio.config.word_duration + 1e-6
                if span.op in ("send", "forward"):
                    kind = "tx"
                elif span.op in ("receive", "overhear", "drop", "deliver"):
                    kind = "rx"
                else:
                    continue
                windows.setdefault(span.node, []).append(
                    (span.time, span.time + span.duration + grace, kind,
                     journey.id))
        row_by_id = {row["journey"]: row for row in rows}
        matched = 0.0
        for cpu, stack in self.invocations.items():
            record = self._records.get(cpu)
            name = record.name if record is not None else cpu
            node_windows = sorted(windows.get(name, ()))
            if not node_windows:
                continue
            for t0, t_end, handler, energy in stack:
                if energy == 0.0:
                    continue
                end = t_end if t_end is not None else math.inf
                journey_id = None
                if handler in ("RADIO_RX", "RADIO_TX_DONE"):
                    want = "rx" if handler == "RADIO_RX" else "tx"
                    # The dispatch lands inside (or a word after) the
                    # span's air window on this node.
                    for start, deadline, kind, jid in node_windows:
                        if kind == want and start <= t0 <= deadline:
                            journey_id = jid
                            break
                else:
                    # A timer/soft/boot handler that staged a transmit:
                    # the send span opens while the invocation runs.
                    for start, deadline, kind, jid in node_windows:
                        if kind == "tx" and t0 <= start <= end:
                            journey_id = jid
                            break
                if journey_id is not None:
                    row = row_by_id.get(journey_id)
                    if row is not None:
                        row["cpu_j"] += energy
                        matched += energy
        for row in rows:
            row["total_j"] = row["radio_j"] + row["cpu_j"]
        return rows, matched

    # -- flame-graph export ---------------------------------------------------

    def _frame_name(self, frame):
        name = frame["function"]
        if frame["file"] and frame["line"] is not None:
            name = "%s %s:%d" % (name, frame["file"], frame["line"])
        return name

    def collapsed_stack(self):
        """Brendan Gregg collapsed-stack lines:
        ``node;layer;handler;function file:line <weight_pJ>``."""
        lines = []
        for frame in self._frames():
            weight = int(round(frame["energy_j"] * 1e12))
            if weight <= 0:
                continue
            stack = ";".join((frame["node"], frame["layer"],
                              frame["handler"], self._frame_name(frame)))
            lines.append("%s %d" % (stack, weight))
        return "\n".join(lines) + "\n" if lines else ""

    def speedscope(self, name="snap-energy"):
        """A speedscope ``sampled`` profile document (weights in pJ)."""
        frames = []
        frame_index = {}

        def intern(label, file=None, line=None):
            key = (label, file, line)
            index = frame_index.get(key)
            if index is None:
                index = frame_index[key] = len(frames)
                entry = {"name": label}
                if file:
                    entry["file"] = file
                if line is not None:
                    entry["line"] = line
                frames.append(entry)
            return index

        profiles = {}
        for frame in self._frames():
            weight = frame["energy_j"] * 1e12
            if weight <= 0:
                continue
            stack = [
                intern(frame["node"]),
                intern(frame["layer"]),
                intern(frame["handler"]),
                intern(self._frame_name(frame), frame["file"], frame["line"]),
            ]
            profile = profiles.setdefault(frame["node"], {
                "type": "sampled", "name": frame["node"], "unit": "none",
                "startValue": 0, "endValue": 0, "samples": [], "weights": []})
            profile["samples"].append(stack)
            profile["weights"].append(weight)
            profile["endValue"] += weight
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": "%s (weights in pJ)" % name,
            "activeProfileIndex": 0,
            "exporter": "repro.obs.energy",
            "shared": {"frames": frames},
            "profiles": [profiles[node] for node in sorted(profiles)],
        }

    # -- reporting ------------------------------------------------------------

    def report(self, top=10):
        """A human-readable four-view summary."""
        lines = []
        line_view = self.line_view()
        lines.append("energy provenance: %.3f nJ total, residual %.3g nJ "
                     "(%.4f%%)" % (line_view["total_j"] * 1e9,
                                   line_view["residual_j"] * 1e9,
                                   line_view["residual_frac"] * 100))
        lines.append("-- hottest lines --")
        for frame in line_view["frames"][:top]:
            lines.append("  %-28s %-12s %10.3f nJ"
                         % (self._frame_name(frame), frame["layer"],
                            frame["energy_j"] * 1e9))
        layer_view = self.layer_view()
        lines.append("-- layers --")
        for layer in LAYERS:
            energy = layer_view["layers"].get(layer, 0.0)
            if energy:
                lines.append("  %-12s %10.3f nJ" % (layer, energy * 1e9))
        packet_view = self.packet_view()
        if packet_view["packets"]:
            lines.append("-- packets --")
            for row in packet_view["packets"][:top]:
                lines.append(
                    "  #%-3d %-12s %s->%s %d hops %10.3f nJ "
                    "(radio %.3f + cpu %.3f)"
                    % (row["journey"], row["kind"], row["origin"],
                       row["destination"], row["hops"],
                       row["total_j"] * 1e9, row["radio_j"] * 1e9,
                       row["cpu_j"] * 1e9))
            non_packet = packet_view["non_packet"]
            lines.append("  (non-packet) cpu %.3f nJ, idle-sleep %.3f nJ, "
                         "radio idle %.3f nJ"
                         % (non_packet["cpu_j"] * 1e9,
                            non_packet["idle_sleep_j"] * 1e9,
                            non_packet["radio_idle_j"] * 1e9))
        return "\n".join(lines)


# -- meter-side layer split (no observability required) ------------------------

def layer_split_from_meter(meter, radio_energy=0.0):
    """A layer -> joules split straight from an :class:`EnergyMeter`.

    Coarser than the ledger (handler tags only, no function-prefix
    refinement) but needs no trace bus -- the sweep engine uses it to
    put per-layer energy on every cell.  Sums exactly to
    ``meter.total_energy + radio_energy``.
    """
    split = {layer: 0.0 for layer in LAYERS}
    non_instruction = (meter.wakeup_energy + meter.event_token_energy
                       + meter.idle_energy)
    attributed = 0.0
    for tag, stats in meter.by_handler.items():
        split[handler_layer(tag)] += stats.energy
        attributed += stats.energy
    split["idle-sleep"] += non_instruction
    split["radio"] += radio_energy
    # Instructions retired outside any handler tag (none in practice,
    # but keep the split exactly reconciling regardless).
    split["app"] += (meter.total_energy - non_instruction) - attributed
    return split


# -- battery-lifetime projection -----------------------------------------------

def project_lifetime(rows, capacity_j, tail_fraction=0.5):
    """Time-to-depletion per node from timeline rows.

    *rows* are :class:`TimelineSampler` rows (cumulative ``energy_j``
    per node over ``time_s``); *capacity_j* is a battery capacity in
    joules, or a ``{node: joules}`` map.  Two extrapolations per node:

    * ``linear_s`` -- whole-run average power;
    * ``drain_s`` -- the slope of the trailing *tail_fraction* of the
      curve (tracks duty-cycle changes; the paper's DVS story).

    ``partition_s`` is the earliest projected depletion across nodes --
    the moment the network first loses a node.
    """
    by_node = {}
    for row in rows:
        by_node.setdefault(row["node"], []).append(
            (row["time_s"], row["energy_j"]))
    nodes = {}
    partition = math.inf
    first_death = None
    for node, points in by_node.items():
        points.sort()
        t_last, e_last = points[-1]
        capacity = capacity_j.get(node, 0.0) \
            if isinstance(capacity_j, dict) else capacity_j
        linear = math.inf
        if t_last > 0 and e_last > 0:
            linear = capacity * t_last / e_last
        drain = math.inf
        tail_start = max(0, int(len(points) * (1.0 - tail_fraction)) - 1)
        t0, e0 = points[tail_start]
        if t_last > t0 and e_last > e0:
            slope = (e_last - e0) / (t_last - t0)
            drain = t_last + (capacity - e_last) / slope
        estimate = drain if drain != math.inf else linear
        nodes[node] = {
            "capacity_j": capacity,
            "consumed_j": e_last,
            "elapsed_s": t_last,
            "mean_power_w": e_last / t_last if t_last > 0 else 0.0,
            "linear_s": linear,
            "drain_s": drain,
            "depletes_s": estimate,
        }
        if estimate < partition:
            partition = estimate
            first_death = node
    return {
        "nodes": nodes,
        "partition_s": partition,
        "first_death": first_death,
    }
