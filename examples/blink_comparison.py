"""Figure 5, live: the periodic LED Blink on SNAP/LE versus a
TinyOS-style mote, both actually executed.

The SNAP side runs on the asynchronous core simulator (hardware event
queue, timer coprocessor, done-instruction dispatch).  The mote side
runs on the baseline AVR-like core: a hardware timer interrupt, a full
register save, a virtualized timer scan, a task post, a scheduler loop
-- the TinyOS structure -- with the useful work bracketed by profiling
markers so the overhead split is measured, not assumed.

Run with::

    python examples/blink_comparison.py
"""

from repro.bench.harness import blink_comparison


def main():
    result = blink_comparison(iterations=20)

    print("Periodic LED blink, per iteration")
    print("=" * 54)
    print("SNAP/LE (event-driven, no OS):")
    print("  instructions      %.0f" % result.snap_instructions)
    print("  cycles            %.0f      (paper: 41)" % result.snap_cycles)
    print("  energy @1.8V      %.1f nJ  (paper: 6.8)"
          % (result.snap_energy_18 * 1e9))
    print("  energy @0.6V      %.2f nJ  (paper: 0.5)"
          % (result.snap_energy_06 * 1e9))
    print()
    print("TinyOS-style mote (ISRs + task scheduler):")
    print("  cycles            %.0f      (paper: 523)" % result.avr_cycles)
    print("  useful cycles     %.0f      (paper: 16)"
          % result.avr_useful_cycles)
    print("  overhead cycles   %.0f      (paper: 507)"
          % result.avr_overhead_cycles)
    print("  energy            %.0f nJ   (paper: 1960)"
          % (result.avr_energy * 1e9))
    print()
    ratio_18 = result.avr_energy / result.snap_energy_18
    ratio_06 = result.avr_energy / result.snap_energy_06
    print("Energy ratio mote/SNAP: %.0fx at 1.8V, %.0fx at 0.6V"
          % (ratio_18, ratio_06))
    print("Overhead on the mote: %.1f%% of all cycles"
          % (100 * result.avr_overhead_cycles / result.avr_cycles))


if __name__ == "__main__":
    main()
