"""Writing a sensor-node application in C.

The paper's applications were written in C and compiled with an
unoptimized lcc port (Section 4.2).  This example uses this repository's
equivalent tool-chain (:mod:`repro.cc`): an event-driven heartbeat
monitor written in C, compiled to SNAP assembly, linked with boot glue,
and run on the simulated core.

Run with::

    python examples/c_application.py
"""

from repro.cc import build_c_node, compile_c
from repro.core import CoreConfig, SnapProcessor
from repro.isa.events import Event

C_SOURCE = """
/* An event-driven heartbeat monitor: every period, read the interval
 * sensor value handed over by the harness, keep a windowed average,
 * and count anomalies (intervals far from the running average). */

int window[8];
int idx;
int average;
int beats;
int anomalies;

void arm_timer() {
    __schedlo(0, 250);           /* 250us period */
}

void init() {
    int i;
    for (i = 0; i < 8; i = i + 1) window[i] = 400;
    idx = 0;
    average = 400;
    beats = 0;
    anomalies = 0;
    arm_timer();
}

__handler void on_timer() {
    __r15_write(0x3002);         /* Query sensor 2; result arrives as a
                                    QUERY_DONE event */
    arm_timer();
}

__handler void on_sample() {
    int sample;
    int i;
    int sum;
    int delta;
    sample = __r15_read();
    window[idx] = sample;
    idx = (idx + 1) & 7;
    sum = 0;
    for (i = 0; i < 8; i = i + 1) sum = sum + window[i];
    average = sum / 8;
    if (sample > average) delta = sample - average;
    else delta = average - sample;
    if (delta > 100) anomalies = anomalies + 1;
    beats = beats + 1;
}
"""


def main():
    assembly = compile_c(C_SOURCE)
    print("Compiled %d lines of C into %d lines of SNAP assembly."
          % (len(C_SOURCE.splitlines()), len(assembly.splitlines())))
    print("First handler lines:")
    for line in assembly.splitlines()[:10]:
        print("   ", line)
    print("    ...")

    program = build_c_node(C_SOURCE, handlers={
        Event.TIMER0: "on_timer",
        Event.QUERY_DONE: "on_sample",
    })

    # An "interval" sensor: mostly ~400, with occasional arrhythmic beats.
    from repro.sensors import TraceSensor
    intervals = [400, 405, 398, 402, 660, 401, 399, 403, 160, 400] * 10
    sensor = TraceSensor(intervals, sample_hz=4000.0)

    processor = SnapProcessor(config=CoreConfig(voltage=0.6))
    processor.mcp.attach_sensor(2, sensor)
    processor.load(program)
    processor.run(until=0.0255)   # ~100 beats at 250us

    def read_global(name):
        return processor.dmem.peek(program.symbols["g_" + name])

    print("\nAfter ~100 heartbeats at 0.6V:")
    print("  beats processed =", read_global("beats"))
    print("  running average =", read_global("average"))
    print("  anomalies       =", read_global("anomalies"))
    meter = processor.meter
    print("  instructions    =", meter.instructions)
    print("  energy          = %.2f nJ (%.1f pJ/ins)"
          % (meter.total_energy * 1e9,
             meter.energy_per_instruction * 1e12))
    print("\nNote the unoptimized stack-machine code: the same handlers")
    print("hand-written in assembly (repro.netstack) use several times")
    print("fewer instructions -- the gap the paper attributes to lcc.")


if __name__ == "__main__":
    main()
