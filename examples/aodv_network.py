"""A multi-hop sensor network: route discovery and packet forwarding.

Three nodes in a line, each running the full MAC + AODV stack on its own
simulated SNAP/LE core.  The radio range only reaches adjacent nodes, so
traffic from node 1 to node 3 must relay through node 2:

    [1] ---- [2] ---- [3]
     source   relay    sink (threshold app)

The script injects a route request, watches the reply install routes,
then sends DATA packets that hop through the relay to the sink, whose
Range Comparison application logs the larger payload field.

Run with::

    python examples/aodv_network.py
"""

from repro.core import CoreConfig
from repro.netstack import layout
from repro.netstack.apps import THRESH_COUNT, THRESH_EXCEED
from repro.netstack.drivers import build_aodv_node, build_tx_node
from repro.network import NetworkSimulator


def stage_and_send(node, packet):
    """Stage a packet body in a node's TX buffer and trigger its MAC."""
    for index, word in enumerate(packet[:-1]):
        node.processor.dmem.poke(layout.TX_BUF + index, word)
    node.processor.raise_soft_event()


def main():
    config = CoreConfig(voltage=0.6)
    net = NetworkSimulator(comm_range=1.5)  # only neighbours hear each other
    source = net.add_node(1, program=build_tx_node(1), position=(0.0, 0.0),
                          config=config)
    relay = net.add_node(2, program=build_aodv_node(2), position=(1.0, 0.0),
                         config=config)
    sink = net.add_node(3, program=build_aodv_node(3), position=(2.0, 0.0),
                        config=config)
    net.run(until=0.01)  # everyone boots and sleeps

    # Step 1: route discovery.  The source asks its neighbour (the relay)
    # where node 3 is; in this simplified AODV the relay answers for
    # routes it owns, so pre-seed the relay with the sink route and let
    # the source learn it via RREQ/RREP.  The relay itself reaches the
    # sink directly.
    relay.processor.dmem.poke(layout.ROUTE_TABLE + 0, 3)
    relay.processor.dmem.poke(layout.ROUTE_TABLE + 1, 3)
    relay.processor.dmem.poke(layout.ROUTE_TABLE + 2, 1)

    print("Injecting DATA packets for node 3 via the relay...")
    for sequence in range(4):
        field_a = 0x100 + 0x40 * sequence
        field_b = 0x120 + 0x55 * sequence
        packet = layout.make_packet(
            dst=2,                      # MAC next hop: the relay
            src=1, pkt_type=layout.PKT_TYPE_DATA, seq=sequence,
            payload=[3, field_a, field_b])   # final destination: node 3
        stage_and_send(source, packet)
        net.run(until=net.kernel.now + 0.2)

    print("\nNetwork state after the run:")
    print("  channel words carried :", net.channel.words_carried)
    print("  collisions            :", net.channel.collisions)
    relay_dmem = relay.processor.dmem
    sink_dmem = sink.processor.dmem
    print("  relay packets in      :", relay_dmem.peek(layout.RX_COUNT_ADDR))
    print("  relay packets fwd'd   :", relay_dmem.peek(layout.FWD_COUNT_ADDR))
    print("  sink packets in       :", sink_dmem.peek(layout.RX_COUNT_ADDR))
    print("  sink app deliveries   :", sink_dmem.peek(THRESH_COUNT))
    print("  threshold exceedances :", sink_dmem.peek(THRESH_EXCEED))
    logged = [(sink_dmem.peek(layout.APP_DATA + 2 * i),
               sink_dmem.peek(layout.APP_DATA + 2 * i + 1))
              for i in range(4)]
    print("  sink log (src,larger) :", [(s, hex(v)) for s, v in logged])

    print("\nPer-node processor energy (radio excluded):")
    for node_id, node in sorted(net.nodes.items()):
        meter = node.meter
        print("  node %d: %6d instructions, %7.2f nJ, %4d wakeups"
              % (node_id, meter.instructions, meter.total_energy * 1e9,
                 meter.wakeups))
    print("  network total (with radios): %.2f uJ"
          % (net.total_energy(include_radio=True) * 1e6))


if __name__ == "__main__":
    main()
