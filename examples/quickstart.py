"""Quickstart: assemble a SNAP program, run it on the simulated SNAP/LE
core, and read its statistics.

Run with::

    python examples/quickstart.py
"""

from repro.asm import build
from repro.core import CoreConfig, SnapProcessor
from repro.isa import disassemble_words

SOURCE = """
; Sum the integers 1..10 into DMEM[0], then set up a periodic timer
; event that increments a counter -- the event-driven SNAP style.
boot:
    movi r1, 10
    movi r2, 0
.loop:
    add r2, r1
    subi r1, 1
    bnez r1, .loop
    st r2, 0(r0)

    ; install a handler for timer 0 and schedule a 100us timeout
    movi r1, 0
    movi r2, on_timer
    setaddr r1, r2
    movi r1, 0
    movi r2, 100
    schedlo r1, r2
    done                 ; sleep until the first event

on_timer:
    ld r3, 1(r0)
    addi r3, 1
    st r3, 1(r0)
    movi r1, 0
    movi r2, 100
    schedlo r1, r2       ; re-arm: one event every 100us
    done
"""


def main():
    program = build(SOURCE)
    print("Assembled %d words (%d bytes) of SNAP code:"
          % (program.text_size_words, program.text_size_bytes))
    for line in disassemble_words(program.imem)[:8]:
        print("   ", line)
    print("    ...")

    # Run at the paper's low-energy operating point: 0.6V, ~28 MIPS,
    # ~24 pJ per instruction.
    processor = SnapProcessor(config=CoreConfig(voltage=0.6))
    processor.load(program)
    meter = processor.run(until=0.00105)  # one millisecond plus slack

    print("\nAfter 1ms of simulated time at 0.6V:")
    print("  sum(1..10)        =", processor.dmem.peek(0))
    print("  timer events      =", processor.dmem.peek(1))
    print("  asleep now        =", processor.asleep)
    print("  instructions      =", meter.instructions)
    print("  busy time         = %.2f us" % (meter.busy_time * 1e6))
    print("  idle time         = %.2f us (zero switching activity)"
          % (meter.idle_time * 1e6))
    print("  wakeups           = %d (each %.1f ns)"
          % (meter.wakeups, processor.timing.wakeup_latency * 1e9))
    print("  total energy      = %.2f nJ" % (meter.total_energy * 1e9))
    print("  energy/instruction= %.1f pJ"
          % (meter.energy_per_instruction * 1e12))


if __name__ == "__main__":
    main()
