"""In-network aggregation: querying a sensor field.

The paper's Figure 1 marks some nodes as "aggregation points".  This
example runs that role end-to-end on simulated SNAP/LE nodes: a sink
floods a query (MAX or SUM of every node's current temperature reading)
across a multi-hop chain; each node opens a depth-staggered aggregation
window, folds its own reading and its children's *aggregated* replies
together, and sends a single reply up the reverse path -- so the sink
receives one packet, not one per node.

Run with::

    python examples/aggregation_query.py
"""

from repro.netstack.aggregation import (
    AGG_NEXT_OP,
    AGG_OP_MAX,
    AGG_OP_SUM,
    AGG_REPLIES,
    AGG_RESULT,
    AGG_RESULT_COUNT,
    AGG_VALUE,
    build_aggregation_node,
)
from repro.network import NetworkSimulator
from repro.sensors import TemperatureSensor


def main():
    # A 4-node chain; radio range reaches only adjacent nodes.
    net = NetworkSimulator(comm_range=1.5)
    nodes = {}
    for index, node_id in enumerate([1, 2, 3, 4]):
        nodes[node_id] = net.add_node(
            node_id, program=build_aggregation_node(node_id),
            position=(float(index), 0.0))
    net.run(until=0.05)

    # Give every node a "current reading" from its own temperature
    # sensor (different seeds -> different microclimates).
    readings = {}
    for node_id, node in nodes.items():
        sensor = TemperatureSensor(base_c=15.0 + 2.0 * node_id, seed=node_id)
        readings[node_id] = sensor.read(0.0)
        node.processor.dmem.poke(AGG_VALUE, readings[node_id])
    print("Node readings (ADC codes):", readings)

    sink = nodes[1]

    def query(op, name):
        sink.processor.dmem.poke(AGG_NEXT_OP, op)
        sink.processor.raise_soft_event()
        net.run(until=net.kernel.now + 0.5)
        result = sink.processor.dmem.peek(AGG_RESULT)
        count = sink.processor.dmem.peek(AGG_RESULT_COUNT)
        print("\n%s query -> result %d over %d nodes" % (name, result, count))
        return result, count

    result, count = query(AGG_OP_MAX, "MAX")
    assert result == max(readings.values()) and count == 4

    result, count = query(AGG_OP_SUM, "SUM")
    assert result == sum(readings.values()) and count == 4
    print("AVG = %d (host-side divide of SUM/count)" % (result // count))

    print("\nIn-network reduction (replies merged at each hop):")
    for node_id in (2, 3):
        merged = nodes[node_id].processor.dmem.peek(AGG_REPLIES)
        print("  relay node %d merged %d child repl%s per query"
              % (node_id, merged // 2, "y" if merged // 2 == 1 else "ies"))
    print("  the sink heard ONE reply per query, covering all four nodes")

    print("\nChannel: %d words carried, %d collisions"
          % (net.channel.words_carried, net.channel.collisions))
    print("Per-node processor energy:")
    for node_id, node in sorted(nodes.items()):
        print("  node %d: %.2f nJ (%d instructions)"
              % (node_id, node.meter.total_energy * 1e9,
                 node.meter.instructions))


if __name__ == "__main__":
    main()
