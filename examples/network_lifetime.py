"""Network lifetime: the paper's motivating metric.

Section 1: "The lifetime of a sensor network is a function of the
operations (computation, communication, sensing) performed by its nodes
and of the amount of energy stored in its nodes' batteries."

This example runs a convergecast data-gathering chain -- every node
samples its temperature sensor periodically and reports to the sink over
multi-hop routes, with the relays funneling traffic -- then estimates
battery lifetime for SNAP/LE nodes versus mote-class nodes running the
same workload at the Atmel's published energy figures.

Run with::

    python examples/network_lifetime.py
"""

from repro.network.experiments import convergecast, lifetime_comparison

YEAR_S = 365.0 * 24 * 3600


def main():
    print("Running a 4-node convergecast chain for 10 simulated seconds")
    print("(100ms sample period; node 1 is the sink)...\n")
    result = convergecast(chain_length=4, period_s=0.1, duration_s=10.0)

    print("  sink deliveries     :", result.sink_deliveries)
    print("  channel collisions  :", result.channel_collisions)
    print()
    print("  node   instructions  sent  fwd   processor power")
    for node_id, report in sorted(result.nodes.items()):
        print("   %d %14d %6d %4d   %8.1f nW"
              % (node_id, report.instructions, report.packets_sent,
                 report.packets_forwarded, report.average_power_w * 1e9))
    hottest = result.hottest_node
    print("\n  The funnel effect: node %d (nearest relay chain position)"
          % hottest.node_id)
    print("  burns the most power and determines network lifetime.")

    battery_j = 2000.0  # roughly a coin cell
    comparison = lifetime_comparison(result, battery_j=battery_j)
    print("\nLifetime on a %.0f J battery (processor energy only):"
          % battery_j)
    print("  SNAP/LE node  : %8.1f nW  -> %8.1f years"
          % (comparison.snap_power_w * 1e9,
             comparison.snap_lifetime_s / YEAR_S))
    print("  mote-class MCU: %8.1f uW  -> %8.2f years"
          % (comparison.mote_power_w * 1e6,
             comparison.mote_lifetime_s / YEAR_S))
    print("  lifetime ratio: %.0fx" % comparison.ratio)

    # With leakage, the SNAP estimate becomes finite and realistic: the
    # paper's Section 6 explains why idle power matters so much here.
    leaky = lifetime_comparison(result, battery_j=battery_j,
                                snap_leakage_w=100e-9)
    print("\nWith 100 nW of leakage on the SNAP node (the Section 6")
    print("future-work concern): %.1f years -- leakage, not computation,"
          % (leaky.snap_lifetime_s / YEAR_S))
    print("bounds the lifetime of an event-driven node.")


if __name__ == "__main__":
    main()
