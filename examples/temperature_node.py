"""A data-gathering node: the paper's Temperature Sense application
(Table 1) running on a full simulated node with a synthetic diurnal
temperature sensor.

The node sleeps between samples; each sample costs a timer event, a
Query through the message coprocessor, and a QUERY_DONE handler that
maintains a windowed average, min/max, and a log ring -- all in SNAP
assembly on the simulated core.

Run with::

    python examples/temperature_node.py
"""

from repro.core import CoreConfig
from repro.netstack import build_temperature_app
from repro.netstack.apps import (
    TEMP_AVG,
    TEMP_ITERATIONS,
    TEMP_LOG_BASE,
    TEMP_MAX,
    TEMP_MIN,
)
from repro.node import SensorNode
from repro.sensors import TemperatureSensor


def main():
    # Compress a day into 86.4 simulated seconds (1000x) so the diurnal
    # swing is visible in a short run; sample every 100 ms.
    sensor = TemperatureSensor(base_c=18.0, amplitude_c=8.0,
                               period_s=86.4, noise_c=0.3, seed=7)
    node = SensorNode(config=CoreConfig(voltage=0.6))
    node.attach_sensor(sensor, sensor_id=1)
    node.load(build_temperature_app(period_ticks=100_000))  # 100 ms

    seconds = 86.4
    node.run(until=seconds)

    dmem = node.processor.dmem
    meter = node.meter
    iterations = dmem.peek(TEMP_ITERATIONS)
    adc = sensor.adc

    print("Simulated %.0f s (one compressed day) at 0.6V" % seconds)
    print("  samples taken   = %d" % iterations)
    print("  window average  = %d (%.1f C)"
          % (dmem.peek(TEMP_AVG), adc.to_physical(dmem.peek(TEMP_AVG))))
    print("  min/max codes   = %d / %d (%.1f C / %.1f C)"
          % (dmem.peek(TEMP_MIN), dmem.peek(TEMP_MAX),
             adc.to_physical(dmem.peek(TEMP_MIN)),
             adc.to_physical(dmem.peek(TEMP_MAX))))
    recent = [dmem.peek(TEMP_LOG_BASE + i) for i in range(8)]
    print("  log ring head   =", recent)

    duty = meter.busy_time / seconds
    print("\nEnergy account:")
    print("  instructions    = %d (%.0f per sample)"
          % (meter.instructions, meter.instructions / max(1, iterations)))
    print("  busy time       = %.3f ms  (duty cycle %.5f%%)"
          % (meter.busy_time * 1e3, 100 * duty))
    print("  total energy    = %.2f uJ over the day"
          % (meter.total_energy * 1e6))
    print("  average power   = %.1f nW  -- the paper's nanowatt regime"
          % (meter.total_energy / seconds * 1e9))


if __name__ == "__main__":
    main()
